// Package fleet is the cross-session query subsystem of the AIMS middle
// tier: one range-aggregate evaluated over *all sessions of a device
// class* (or an explicit session-ID set) by scatter-gather, then merged
// into a single answer. It is the fan-in layer the paper's multi-user
// scenarios need — the virtual-classroom study analyses groups of tracked
// subjects, the haptic scenario aggregates over many simultaneous
// CyberGlove sessions — and the first query path in this system whose
// result spans stores owned by different goroutines.
//
// Consistency contract: sessions keep ingesting while a fleet query runs.
// Each session contributes frames up to its own high-water mark at scatter
// time — for exact kinds the atomically copied span of core.Summarize, for
// approximate kinds the sealed engine's state at evaluation — and that
// watermark is reported back per session in the result, so a caller knows
// exactly which prefix of each stream the answer covers. There is no
// cross-session barrier: the fleet answer is a consistent-per-session,
// best-effort-across-sessions snapshot.
//
// Merge semantics per kind:
//
//   - COUNT: direct combination, Σ per-session counts (exact).
//   - AVERAGE: weighted merge of per-session (Σv, N) pairs (exact).
//   - VARIANCE: merged from per-session moments (N, Σv, Σv²) (exact).
//   - Approximate/progressive COUNT: Σ per-session estimates, with a
//     combined guaranteed bound that is the sum of per-session bounds
//     (|Σeᵢ − Σcᵢ| ≤ Σ|eᵢ − cᵢ| ≤ Σboundᵢ).
//
// Merging folds in ascending session-ID order regardless of gather
// completion order, so a fleet answer over a fixed set of stores is
// bit-identical to evaluating each session individually and merging
// client-side with the same fold (the equivalence property the tests pin).
//
// Approximate kinds compile once per distinct engine geometry per fleet
// query, not once per session: every per-session scan routes through
// propolyne.SharedCache, whose keys are the engine geometry fingerprint
// plus the query shape, and whose per-key singleflight collapses the
// concurrent first-touch misses of a scatter wave into one compilation.
// Sessions of one device class seal to identical geometry, so a 10k-session
// scan pays one plan compile and 10k pure sparse dot products.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"aims/internal/core"
	"aims/internal/obs"
	"aims/internal/wire"
)

// errDeadlineSlot marks a scatter slot whose scan never started because
// the fleet deadline had already fired when a worker picked it up. The
// slot is returned immediately so one slow (or unregistered) session
// cannot starve the pool of workers that later queries share.
var errDeadlineSlot = errors.New("fleet: scan not started before the fleet deadline")

// Session is one live session as the fleet layer sees it: identity, the
// device class it registered under, and its store.
type Session struct {
	ID    uint64
	Class string
	Store *core.LiveStore
}

// Request is one fleet query.
type Request struct {
	Kind    wire.QueryKind
	Channel int
	T0, T1  float64
	Arg     uint32
	Scope   wire.FleetScope
	// Partial selects the partial-result policy: true merges whatever
	// succeeded and reports the failures (CodePartial); false fails the
	// whole query on the first per-session failure.
	Partial bool
	// Timeout caps the query's wall time; 0 uses Config.Timeout.
	Timeout time.Duration
	// Trace, when non-nil, collects the evaluation's span tree: Evaluate
	// attaches one child subtree per scoped session (queue wait, seal, plan
	// hit/compile, dot product) plus scope-match and merge spans, all under
	// TraceParent. Workers stamp spans concurrently — obs.Trace is
	// goroutine-safe and a straggler stamping after Finish is a no-op.
	Trace       *obs.Trace
	TraceParent obs.SpanID
}

// Config shapes an evaluator.
type Config struct {
	// Workers bounds the scatter fan-out pool (default 16). The pool is
	// per query; a fleet of 10k sessions is scanned Workers at a time.
	Workers int
	// Timeout is the default per-query deadline (default 5s). Sessions
	// whose scan has not finished when it expires become CodeDeadline
	// failures, handled under the partial policy.
	Timeout time.Duration
	// Observer receives fleet instrumentation; zero-value hooks are
	// skipped.
	Observer Observer
}

// Observer carries the fleet evaluator's metric hooks.
type Observer struct {
	FanOut       func(width int) // sessions matched per query
	ScanSeconds  func(s float64) // one session's scan wall time
	MergeSeconds func(s float64) // merge wall time per query
	Detail       func(parts int) // per-session parts attached to a result
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	return c
}

// Match filters sessions by scope and returns them in ascending ID order,
// plus — for an explicit ID scope — the requested IDs that matched no live
// session (the caller reports those as per-session failures).
func Match(sessions []Session, scope wire.FleetScope) (matched []Session, missing []uint64) {
	if scope.Class != "" {
		for _, s := range sessions {
			if s.Class == scope.Class {
				matched = append(matched, s)
			}
		}
	} else {
		byID := make(map[uint64]Session, len(sessions))
		for _, s := range sessions {
			byID[s.ID] = s
		}
		seen := make(map[uint64]bool, len(scope.IDs))
		for _, id := range scope.IDs {
			if seen[id] {
				continue // a duplicated ID must not double-count its session
			}
			seen[id] = true
			if s, ok := byID[id]; ok {
				matched = append(matched, s)
			} else {
				missing = append(missing, id)
			}
		}
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].ID < matched[j].ID })
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	return matched, missing
}

// EvalSession answers one fleet request against a single session's store,
// returning the session's mergeable partial and its frame watermark. This
// is the per-session scan the scatter pool runs — and what a client doing
// its own merge would call per session.
func EvalSession(s Session, req Request) (wire.FleetPart, error) {
	return evalSessionTraced(s, req, nil, 0)
}

// evalSessionTraced is EvalSession stamping the scan's span breakdown
// under parent when tr is non-nil.
func evalSessionTraced(s Session, req Request, tr *obs.Trace, parent obs.SpanID) (wire.FleetPart, error) {
	part := wire.FleetPart{ID: s.ID}
	var qt *core.QueryTrace
	var begin time.Time
	if tr != nil {
		qt = &core.QueryTrace{}
		begin = time.Now()
	}
	switch req.Kind {
	case wire.QueryCount, wire.QueryAverage, wire.QueryVariance:
		sum, frames, err := s.Store.Summarize(req.Channel, req.T0, req.T1)
		if tr != nil {
			tr.AddSpan(parent, "scan", begin, time.Now())
		}
		if err != nil {
			return part, err
		}
		part.Frames = frames
		part.N, part.Sum, part.SumSq = sum.N, sum.Sum, sum.SumSq
	case wire.QueryApproxCount:
		est, bound, err := s.Store.ApproximateCountTraced(req.Channel, req.T0, req.T1, int(req.Arg), qt)
		StampQueryTrace(tr, parent, begin, qt)
		if err != nil {
			return part, err
		}
		part.Frames = uint64(s.Store.Frames())
		part.Sum, part.Bound, part.Coefficients = est, bound, req.Arg
	case wire.QueryProgressiveCount:
		steps, err := s.Store.ProgressiveCountTraced(req.Channel, req.T0, req.T1, int(req.Arg), qt)
		StampQueryTrace(tr, parent, begin, qt)
		if err != nil {
			return part, err
		}
		if len(steps) == 0 {
			return part, fmt.Errorf("fleet: progressive evaluation yielded no steps")
		}
		last := steps[len(steps)-1]
		part.Frames = uint64(s.Store.Frames())
		part.Sum, part.Bound = last.Estimate, last.ErrorBound
		part.Coefficients = uint32(last.Coefficients)
	default:
		return part, fmt.Errorf("fleet: unsupported query kind %d", req.Kind)
	}
	return part, nil
}

// StampQueryTrace reconstructs a store evaluation's span breakdown under
// parent from the durations a core.QueryTrace reports: seal, then plan
// provenance (cache hit, or the compile a miss paid), then the coefficient
// dot product. The spans are laid out sequentially from start — that is
// the actual evaluation order inside the store. No-op when tr or qt is
// nil, so untraced paths never pay for it.
func StampQueryTrace(tr *obs.Trace, parent obs.SpanID, start time.Time, qt *core.QueryTrace) {
	if tr == nil || qt == nil {
		return
	}
	at := start
	if qt.SealNS > 0 {
		end := at.Add(time.Duration(qt.SealNS))
		tr.AddSpan(parent, "seal", at, end)
		at = end
	}
	if !qt.PlanUsed {
		return
	}
	if qt.Plan.Hit {
		tr.AddSpan(parent, "plan-hit", at, at)
	} else {
		end := at.Add(time.Duration(qt.Plan.CompileNS))
		tr.AddSpan(parent, "plan-compile", at, end)
		at = end
	}
	tr.AddSpan(parent, "dot", at, at.Add(time.Duration(qt.Plan.EvalNS)))
}

// Merge folds per-session partials — in the order given — into the fleet
// answer for the kind. ok=false mirrors the engine's empty-range signal
// (AVERAGE/VARIANCE over zero merged samples).
func Merge(kind wire.QueryKind, parts []wire.FleetPart) (value, bound float64, coefficients uint32, ok bool) {
	switch kind {
	case wire.QueryCount:
		var s core.Summary
		for _, p := range parts {
			s.Merge(core.Summary{N: p.N, Sum: p.Sum, SumSq: p.SumSq})
		}
		return s.Count(), 0, 0, true
	case wire.QueryAverage:
		var s core.Summary
		for _, p := range parts {
			s.Merge(core.Summary{N: p.N, Sum: p.Sum, SumSq: p.SumSq})
		}
		v, ok := s.Average()
		return v, 0, 0, ok
	case wire.QueryVariance:
		var s core.Summary
		for _, p := range parts {
			s.Merge(core.Summary{N: p.N, Sum: p.Sum, SumSq: p.SumSq})
		}
		v, ok := s.Variance()
		return v, 0, 0, ok
	case wire.QueryApproxCount, wire.QueryProgressiveCount:
		for _, p := range parts {
			value += p.Sum
			bound += p.Bound
			coefficients += p.Coefficients
		}
		return value, bound, coefficients, true
	}
	return 0, 0, 0, false
}

// gathered is one scatter slot's outcome.
type gathered struct {
	idx  int
	part wire.FleetPart
	err  error
}

// fleetJob is one scatter slot: the matched-session index plus the time it
// was queued, so a traced evaluation can report how long the session waited
// for a pool worker (the queue-wait span).
type fleetJob struct {
	idx     int
	created time.Time
}

// Evaluate runs one fleet query over the given session snapshot (the
// caller snapshots its registry first; the slice is the scatter set).
// It always returns a well-formed FleetResult — per-session failures are
// folded in according to the request's partial policy rather than
// surfacing as an error.
func Evaluate(ctx context.Context, sessions []Session, req Request, cfg Config) wire.FleetResult {
	cfg = cfg.withDefaults()
	timeout := req.Timeout
	if timeout <= 0 || timeout > cfg.Timeout {
		timeout = cfg.Timeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	matchStart := time.Now()
	matched, missing := Match(sessions, req.Scope)
	if req.Trace != nil {
		req.Trace.AddSpan(req.TraceParent, "scope-match", matchStart, time.Now())
	}
	res := wire.FleetResult{Kind: req.Kind, Sessions: uint32(len(matched))}
	for _, id := range missing {
		res.Failures = append(res.Failures, wire.FleetFailure{
			ID: id, Code: wire.CodeNotRegistered, Text: "no live session with this id",
		})
	}
	if cfg.Observer.FanOut != nil {
		cfg.Observer.FanOut(len(matched))
	}

	// Scatter: a bounded worker pool pulls session indices; gathers land on
	// a buffered channel so a straggler finishing after the deadline never
	// blocks (its result is simply never read).
	workers := cfg.Workers
	if workers > len(matched) {
		workers = len(matched)
	}
	jobs := make(chan fleetJob)
	results := make(chan gathered, len(matched))
	for w := 0; w < workers; w++ {
		go func() {
			for j := range jobs {
				// Expired already? Return the slot without scanning: the
				// gather marks it CodeDeadline, and the worker is free for
				// the next job instead of burning its budget on an answer
				// nobody will read.
				select {
				case <-ctx.Done():
					results <- gathered{idx: j.idx, err: errDeadlineSlot}
					continue
				default:
				}
				t0 := time.Now()
				var sid obs.SpanID
				if req.Trace != nil {
					// One child subtree per session: queue wait (job creation
					// to worker pickup), then the scan's internal breakdown.
					// Stamps on a trace a deadline already finished are no-ops.
					sid = req.Trace.StartSpan(req.TraceParent,
						fmt.Sprintf("session-%d", matched[j.idx].ID))
					req.Trace.AddSpan(sid, "queue-wait", j.created, t0)
				}
				part, err := evalSessionTraced(matched[j.idx], req, req.Trace, sid)
				if req.Trace != nil {
					req.Trace.EndSpan(sid)
				}
				if cfg.Observer.ScanSeconds != nil {
					cfg.Observer.ScanSeconds(time.Since(t0).Seconds())
				}
				results <- gathered{idx: j.idx, part: part, err: err}
			}
		}()
	}
	go func() {
		defer close(jobs)
		// The creation stamp feeds only the queue-wait span; skip the
		// per-job clock read entirely on the untraced hot path.
		traced := req.Trace != nil
		for i := range matched {
			var created time.Time
			if traced {
				created = time.Now()
			}
			select {
			case jobs <- fleetJob{idx: i, created: created}:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Gather until every slot reports or the deadline fires; slots still
	// outstanding at the deadline become CodeDeadline failures.
	parts := make([]*wire.FleetPart, len(matched))
	errs := make([]error, len(matched))
	reported := 0
gather:
	for reported < len(matched) {
		select {
		case g := <-results:
			reported++
			if g.err != nil {
				errs[g.idx] = g.err
			} else {
				p := g.part
				parts[g.idx] = &p
			}
		case <-ctx.Done():
			break gather
		}
	}

	t0 := time.Now()
	merged := make([]wire.FleetPart, 0, len(matched))
	for i, s := range matched {
		switch {
		case parts[i] != nil:
			merged = append(merged, *parts[i])
		case errors.Is(errs[i], errDeadlineSlot):
			res.Failures = append(res.Failures, wire.FleetFailure{
				ID: s.ID, Code: wire.CodeDeadline, Text: errs[i].Error(),
			})
		case errs[i] != nil:
			res.Failures = append(res.Failures, wire.FleetFailure{
				ID: s.ID, Code: wire.CodeBadQuery, Text: errs[i].Error(),
			})
		default:
			res.Failures = append(res.Failures, wire.FleetFailure{
				ID: s.ID, Code: wire.CodeDeadline, Text: "scan unfinished at fleet deadline",
			})
		}
	}
	// Merged parts are already in ascending session-ID order (matched is
	// sorted and the fold preserves it), which makes the merge
	// deterministic no matter how the gather interleaved.
	res.Merged = uint32(len(merged))
	res.Value, res.Bound, res.Coefficients, res.OK = Merge(req.Kind, merged)
	if req.Trace != nil {
		req.Trace.AddSpan(req.TraceParent, "merge", t0, time.Now())
	}
	if cfg.Observer.MergeSeconds != nil {
		cfg.Observer.MergeSeconds(time.Since(t0).Seconds())
	}

	switch {
	case len(merged) == 0 && len(res.Failures) == 0:
		res.OK = false
		res.Code = wire.CodeNoSessions
	case len(res.Failures) > 0 && !req.Partial:
		res.OK = false
		res.Code = res.Failures[0].Code
		res.Value, res.Bound, res.Coefficients = 0, 0, 0
	case len(res.Failures) > 0:
		res.Code = wire.CodePartial
		if len(merged) == 0 {
			res.OK = false
		}
	default:
		res.Code = wire.CodeOK
	}

	// Per-session detail: watermarks and mergeable partials, capped so a
	// 10k-session fleet answer stays a bounded message.
	if len(merged) > wire.MaxFleetDetail {
		merged = merged[:wire.MaxFleetDetail]
	}
	res.Parts = merged
	if len(res.Failures) > wire.MaxFleetDetail {
		res.Failures = res.Failures[:wire.MaxFleetDetail]
	}
	if cfg.Observer.Detail != nil {
		cfg.Observer.Detail(len(res.Parts))
	}
	return res
}
