package journal

import (
	"testing"

	"aims/internal/core"
	"aims/internal/stream"
)

// TestWALAckRecordRoundTrip appends frame records interleaved with client
// acknowledgement watermarks (the recAck records written when acked frames
// diverge from journaled frames, e.g. after shedding) and checks replay
// surfaces the highest watermark without disturbing the frame stream.
func TestWALAckRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: FsyncBatch}.withDefaults()
	w, err := openWAL(dir, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(0, testFrames(10, 2, 0), 2); err != nil {
		t.Fatal(err)
	}
	if err := w.appendAck(7, 10); err != nil {
		t.Fatal(err)
	}
	if err := w.append(10, testFrames(10, 2, 10), 2); err != nil {
		t.Fatal(err)
	}
	// An ack beyond the journaled stream: the server acknowledged frames it
	// then shed, so the client watermark runs ahead of durability.
	if err := w.appendAck(25, 20); err != nil {
		t.Fatal(err)
	}
	if err := w.appendAck(3, 20); err != nil { // stale ack never regresses it
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	got, res := collect(t, dir, 0, 2)
	if len(got) != 20 || res.processed != 20 || res.truncated {
		t.Fatalf("replayed %d frames (processed=%d truncated=%v), want 20", len(got), res.processed, res.truncated)
	}
	if res.ackSeq != 25 {
		t.Fatalf("replayed ackSeq = %d, want 25", res.ackSeq)
	}
}

// TestWALAckRotatesSegments forces an ack record to trigger segment
// rotation and checks the new segment's header carries the right first
// frame, so the rotated log still replays cleanly.
func TestWALAckRotatesSegments(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: FsyncOff, SegmentBytes: 512}.withDefaults()
	w, err := openWAL(dir, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var next uint64
	for i := 0; i < 30; i++ {
		if err := w.append(next, testFrames(4, 2, next), 2); err != nil {
			t.Fatal(err)
		}
		next += 4
		if err := w.appendAck(next, next); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	if seqs, _ := listSegments(dir); len(seqs) < 2 {
		t.Fatalf("expected rotation with 512-byte segments, got %d", len(seqs))
	}
	got, res := collect(t, dir, 0, 2)
	if uint64(len(got)) != next || res.truncated {
		t.Fatalf("replayed %d/%d frames (truncated=%v)", len(got), next, res.truncated)
	}
	if res.ackSeq != next {
		t.Fatalf("ackSeq = %d, want %d", res.ackSeq, next)
	}
}

// TestReplayTrailingDuplicateIsDropped pins the replay-dedup invariant at
// the journal layer: when the recovery watermark (a snapshot's frame
// count) already covers the log's trailing record, replay must deliver
// nothing from it — not an overlap error, not a double apply.
func TestReplayTrailingDuplicateIsDropped(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: FsyncBatch}.withDefaults()
	w, err := openWAL(dir, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(0, testFrames(100, 2, 0), 2); err != nil {
		t.Fatal(err)
	}
	if err := w.append(100, testFrames(100, 2, 100), 2); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	// Snapshot watermark 200: both records are already applied.
	got, res := collect(t, dir, 200, 2)
	if len(got) != 0 {
		t.Fatalf("replay past full watermark delivered %d frames, want 0", len(got))
	}
	if res.processed != 200 || res.truncated {
		t.Fatalf("processed=%d truncated=%v, want 200/false", res.processed, res.truncated)
	}

	// Watermark mid-record: the straddling trailer is trimmed to its fresh
	// suffix and replay resumes exactly at the watermark.
	var starts []uint64
	var frames int
	res2, err := replayWAL(dir, 150, 2, func(start uint64, fr []stream.Frame) error {
		starts = append(starts, start)
		frames += len(fr)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 1 || starts[0] != 150 || frames != 50 {
		t.Fatalf("straddle replay: starts=%v frames=%d, want one delivery of 50 at 150", starts, frames)
	}
	if res2.processed != 200 {
		t.Fatalf("straddle processed = %d, want 200", res2.processed)
	}
}

// TestRecoverCarriesAckWatermark: a session that recorded a client ack
// beyond its journaled frames (shed divergence) must hand that watermark
// back after a crash, so a resuming device is not asked to replay frames
// the server already acknowledged and consciously dropped.
func TestRecoverCarriesAckWatermark(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: FsyncBatch, SnapshotFrames: -1}
	m, err := OpenManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	meta := testMeta("shedder", 2)
	sess, _, err := m.Attach(meta)
	if err != nil {
		t.Fatal(err)
	}
	ls, _ := core.NewLiveStore(meta.Mins, meta.Maxs, testStoreCfg)
	ingest(t, sess, ls, sineFrames(100, 2, 0))
	sess.RecordAck(150) // 50 acked frames were shed, never journaled
	if got := sess.ClientSeq(); got != 150 {
		t.Fatalf("live ClientSeq = %d, want 150", got)
	}
	// Crash without Close.

	m2, _ := OpenManager(cfg)
	recovered, err := m2.Recover(testStoreCfg)
	if err != nil || len(recovered) != 1 {
		t.Fatalf("recover: %v (%d)", err, len(recovered))
	}
	r := recovered[0]
	if r.Processed != 100 {
		t.Fatalf("processed = %d, want 100", r.Processed)
	}
	if r.AckSeq != 150 {
		t.Fatalf("recovered AckSeq = %d, want 150", r.AckSeq)
	}
	// Adoption threads the watermark into the live session.
	sess2, prior, err := m2.Attach(meta)
	if err != nil || prior == nil {
		t.Fatalf("attach after recover: %v (prior=%v)", err, prior)
	}
	if got := sess2.ClientSeq(); got != 150 {
		t.Fatalf("adopted ClientSeq = %d, want 150", got)
	}
}
