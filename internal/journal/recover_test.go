package journal

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"aims/internal/core"
	"aims/internal/stream"
)

var testStoreCfg = core.LiveStoreConfig{
	Rate:        100,
	TimeBuckets: 32,
	ValueBins:   32,
}

func testMeta(name string, channels int) Meta {
	mins := make([]float64, channels)
	maxs := make([]float64, channels)
	for c := range mins {
		mins[c], maxs[c] = -50, 1050
	}
	return Meta{
		Name: name, Rate: 100, HorizonTicks: 3200,
		TimeBuckets: 32, ValueBins: 32, Mins: mins, Maxs: maxs,
	}
}

func sineFrames(n, channels int, start uint64) []stream.Frame {
	frames := make([]stream.Frame, n)
	for i := range frames {
		vals := make([]float64, channels)
		for c := range vals {
			vals[c] = 500 + 400*math.Sin(float64(start+uint64(i))/17+float64(c))
		}
		frames[i] = stream.Frame{T: float64(start+uint64(i)) / 100, Values: vals}
	}
	return frames
}

// ingest pushes frames through the durability path and the live store the
// way the server's consumer does.
func ingest(t *testing.T, s *Session, ls *core.LiveStore, frames []stream.Frame) {
	t.Helper()
	s.AppendFrames(frames, nil)
	if _, err := ls.AppendFrames(frames); err != nil {
		t.Fatal(err)
	}
	s.MaybeSnapshot(ls)
}

func queriesMatch(t *testing.T, a, b *core.LiveStore, channels int) {
	t.Helper()
	if a.Frames() != b.Frames() {
		t.Fatalf("frames %d vs %d", a.Frames(), b.Frames())
	}
	for ch := 0; ch < channels; ch++ {
		n1, _ := a.CountSamples(ch, 0, 32)
		n2, _ := b.CountSamples(ch, 0, 32)
		if n1 != n2 {
			t.Fatalf("ch %d count %v vs %v", ch, n1, n2)
		}
		v1, ok1, _ := a.AverageValue(ch, 0, 32)
		v2, ok2, _ := b.AverageValue(ch, 0, 32)
		if ok1 != ok2 || math.Abs(v1-v2) > 1e-9 {
			t.Fatalf("ch %d average %v vs %v", ch, v1, v2)
		}
	}
}

// TestRecoverWALOnly crashes (no Close, no snapshot) and recovers purely
// from the WAL.
func TestRecoverWALOnly(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: FsyncBatch, SnapshotFrames: -1}
	m, err := OpenManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, prior, err := m.Attach(testMeta("glove", 3))
	if err != nil || prior != nil {
		t.Fatalf("attach: %v (prior=%v)", err, prior)
	}
	ls, _ := core.NewLiveStore(testMeta("glove", 3).Mins, testMeta("glove", 3).Maxs, testStoreCfg)
	for i := 0; i < 6; i++ {
		ingest(t, sess, ls, sineFrames(50, 3, uint64(i*50)))
	}
	// Crash: the manager and session simply vanish.

	m2, err := OpenManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := m2.Recover(testStoreCfg)
	if err != nil || len(recovered) != 1 {
		t.Fatalf("recover: %v (%d sessions)", err, len(recovered))
	}
	r := recovered[0]
	if r.Processed != 300 || r.Truncated {
		t.Fatalf("recovered processed=%d truncated=%v", r.Processed, r.Truncated)
	}
	queriesMatch(t, ls, r.Store, 3)
}

// TestRecoverSnapshotPlusTail snapshots mid-stream, keeps ingesting, then
// crashes: recovery must load the snapshot and replay only the tail.
func TestRecoverSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: FsyncBatch, SnapshotFrames: -1}
	m, err := OpenManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	meta := testMeta("classroom", 2)
	sess, _, err := m.Attach(meta)
	if err != nil {
		t.Fatal(err)
	}
	ls, _ := core.NewLiveStore(meta.Mins, meta.Maxs, testStoreCfg)
	ingest(t, sess, ls, sineFrames(200, 2, 0))
	if err := sess.Snapshot(ls); err != nil {
		t.Fatal(err)
	}
	ingest(t, sess, ls, sineFrames(120, 2, 200))
	// Crash here: 200 frames in the snapshot, 120 in the WAL tail.

	m2, _ := OpenManager(cfg)
	recovered, err := m2.Recover(testStoreCfg)
	if err != nil || len(recovered) != 1 {
		t.Fatalf("recover: %v (%d)", err, len(recovered))
	}
	r := recovered[0]
	if r.Watermark != 200 || r.Processed != 320 {
		t.Fatalf("watermark=%d processed=%d", r.Watermark, r.Processed)
	}
	queriesMatch(t, ls, r.Store, 2)
}

// TestRecoverCorruptSnapshotFallsBack flips a byte in the newest snapshot;
// recovery must reject it by CRC and rebuild from the full WAL instead.
func TestRecoverCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: FsyncBatch, SnapshotFrames: -1}
	m, _ := OpenManager(cfg)
	meta := testMeta("tracker", 2)
	sess, _, err := m.Attach(meta)
	if err != nil {
		t.Fatal(err)
	}
	ls, _ := core.NewLiveStore(meta.Mins, meta.Maxs, testStoreCfg)
	ingest(t, sess, ls, sineFrames(150, 2, 0))
	if err := sess.Snapshot(ls); err != nil {
		t.Fatal(err)
	}
	ingest(t, sess, ls, sineFrames(50, 2, 150))

	// Corrupt the snapshot on disk. The WAL still holds every frame (a
	// single segment is never truncated), so recovery loses nothing.
	sdir := filepath.Join(dir, "tracker")
	entries, _ := os.ReadDir(sdir)
	corrupted := false
	for _, e := range entries {
		if _, _, ok := parseSnapName(e.Name()); ok {
			p := filepath.Join(sdir, e.Name())
			b, _ := os.ReadFile(p)
			b[len(b)/3] ^= 0x40
			os.WriteFile(p, b, 0o644)
			corrupted = true
		}
	}
	if !corrupted {
		t.Fatal("no snapshot found to corrupt")
	}

	m2, _ := OpenManager(cfg)
	recovered, err := m2.Recover(testStoreCfg)
	if err != nil || len(recovered) != 1 {
		t.Fatalf("recover: %v (%d)", err, len(recovered))
	}
	r := recovered[0]
	if r.Watermark != 0 || r.Processed != 200 {
		t.Fatalf("watermark=%d processed=%d (want WAL-only rebuild)", r.Watermark, r.Processed)
	}
	queriesMatch(t, ls, r.Store, 2)
}

// TestRecoverTornTail tears a WAL write mid-record before the crash; the
// recovered store must hold exactly the intact prefix, and the session
// must keep working after adoption.
func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	plan := NewFaultPlan()
	cfg := Config{Dir: dir, Fsync: FsyncOff, SnapshotFrames: -1, Degrade: DegradeShed, OpenFile: plan.Open}
	m, _ := OpenManager(cfg)
	meta := testMeta("glove", 2)
	sess, _, err := m.Attach(meta)
	if err != nil {
		t.Fatal(err)
	}
	ls, _ := core.NewLiveStore(meta.Mins, meta.Maxs, testStoreCfg)
	ingest(t, sess, ls, sineFrames(80, 2, 0))
	plan.TearAt(plan.Written() + 30)
	sess.AppendFrames(sineFrames(40, 2, 80), nil) // torn → sheds durability
	if !sess.Degraded() {
		t.Fatal("torn write did not degrade the session")
	}

	m2, _ := OpenManager(Config{Dir: dir, SnapshotFrames: -1})
	recovered, err := m2.Recover(testStoreCfg)
	if err != nil || len(recovered) != 1 {
		t.Fatalf("recover: %v (%d)", err, len(recovered))
	}
	r := recovered[0]
	if !r.Truncated || r.Processed != 80 {
		t.Fatalf("truncated=%v processed=%d, want torn tail cut at 80", r.Truncated, r.Processed)
	}
	if n, _ := r.Store.CountSamples(0, 0, 32); n != 80 {
		t.Fatalf("recovered store holds %v frames, want 80", n)
	}
}

// TestDegradeShedHealsOnSnapshot: a dead disk sheds durability, ingest
// continues, and a successful snapshot restores the journal with the full
// state (including the frames ingested while degraded).
func TestDegradeShedHealsOnSnapshot(t *testing.T) {
	dir := t.TempDir()
	plan := NewFaultPlan()
	healed := 0
	degraded := 0
	cfg := Config{
		Dir: dir, Fsync: FsyncBatch, SnapshotFrames: -1, Degrade: DegradeShed,
		OpenFile: plan.Open,
		Observer: Observer{
			Degraded: func() { degraded++ },
			Healed:   func() { healed++ },
		},
	}
	m, _ := OpenManager(cfg)
	meta := testMeta("suit", 2)
	sess, _, err := m.Attach(meta)
	if err != nil {
		t.Fatal(err)
	}
	ls, _ := core.NewLiveStore(meta.Mins, meta.Maxs, testStoreCfg)
	ingest(t, sess, ls, sineFrames(60, 2, 0))

	plan.TearAt(plan.Written()) // disk dies
	sess.AppendFrames(sineFrames(60, 2, 60), nil)
	if _, err := ls.AppendFrames(sineFrames(60, 2, 60)); err != nil {
		t.Fatal(err)
	}
	if !sess.Degraded() || degraded != 1 {
		t.Fatalf("degraded=%v count=%d", sess.Degraded(), degraded)
	}
	if sess.Processed() != 120 {
		t.Fatalf("processed=%d, want 120 even while degraded", sess.Processed())
	}

	plan.Heal() // disk back; snapshots land again
	if err := sess.Snapshot(ls); err != nil {
		t.Fatal(err)
	}
	if sess.Degraded() || healed != 1 {
		t.Fatalf("after snapshot: degraded=%v healed=%d", sess.Degraded(), healed)
	}
	// Post-heal frames are journaled again and recovery sees everything.
	ingest(t, sess, ls, sineFrames(30, 2, 120))
	if err := sess.Close(ls); err != nil {
		t.Fatal(err)
	}

	m2, _ := OpenManager(Config{Dir: dir, SnapshotFrames: -1})
	recovered, err := m2.Recover(testStoreCfg)
	if err != nil || len(recovered) != 1 {
		t.Fatalf("recover: %v (%d)", err, len(recovered))
	}
	if recovered[0].Processed != 150 {
		t.Fatalf("processed=%d, want 150", recovered[0].Processed)
	}
	queriesMatch(t, ls, recovered[0].Store, 2)
}

// TestDegradeBlockRetriesUntilDiskReturns: under the block policy the
// append stalls, retries, and succeeds once the disk heals — losslessly.
func TestDegradeBlockRetriesUntilDiskReturns(t *testing.T) {
	dir := t.TempDir()
	plan := NewFaultPlan()
	cfg := Config{Dir: dir, Fsync: FsyncOff, SnapshotFrames: -1, Degrade: DegradeBlock, OpenFile: plan.Open}
	m, _ := OpenManager(cfg)
	meta := testMeta("cave", 1)
	sess, _, err := m.Attach(meta)
	if err != nil {
		t.Fatal(err)
	}
	sess.AppendFrames(sineFrames(10, 1, 0), nil)
	plan.TearAt(plan.Written())
	tries := 0
	sess.AppendFrames(sineFrames(10, 1, 10), func() bool {
		tries++
		if tries == 3 {
			plan.Heal()
		}
		return tries < 10
	})
	if sess.Degraded() {
		t.Fatal("block policy degraded despite disk healing")
	}
	sess.Close(nil)

	// One batch was torn mid-record, then retried whole on a fresh
	// segment; replay must see all 20 frames exactly once.
	m2, _ := OpenManager(Config{Dir: dir, SnapshotFrames: -1})
	recovered, err := m2.Recover(testStoreCfg)
	if err != nil || len(recovered) != 1 {
		t.Fatalf("recover: %v (%d)", err, len(recovered))
	}
	if recovered[0].Processed != 20 {
		t.Fatalf("processed=%d, want 20", recovered[0].Processed)
	}
	if n, _ := recovered[0].Store.CountSamples(0, 0, 32); n != 20 {
		t.Fatalf("recovered %v frames, want 20", n)
	}
}

// TestAttachAdoptsRecoveredSession: after recovery, a device registering
// the same session name with a matching shape resumes its session.
func TestAttachAdoptsRecoveredSession(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: FsyncBatch, SnapshotFrames: -1}
	m, _ := OpenManager(cfg)
	meta := testMeta("glove", 2)
	sess, _, err := m.Attach(meta)
	if err != nil {
		t.Fatal(err)
	}
	ls, _ := core.NewLiveStore(meta.Mins, meta.Maxs, testStoreCfg)
	ingest(t, sess, ls, sineFrames(70, 2, 0))
	if err := sess.Close(ls); err != nil {
		t.Fatal(err)
	}

	m2, _ := OpenManager(cfg)
	if _, err := m2.Recover(testStoreCfg); err != nil {
		t.Fatal(err)
	}
	if m2.OrphanCount() != 1 {
		t.Fatalf("orphans=%d", m2.OrphanCount())
	}
	sess2, store, err := m2.Attach(meta)
	if err != nil {
		t.Fatal(err)
	}
	if !sess2.Resumed() || store == nil {
		t.Fatalf("resumed=%v store=%v", sess2.Resumed(), store != nil)
	}
	if m2.OrphanCount() != 0 {
		t.Fatal("orphan not consumed")
	}
	if sess2.Processed() != 70 {
		t.Fatalf("resumed processed=%d", sess2.Processed())
	}
	queriesMatch(t, ls, store, 2)
	// Continued ingest journals onto the adopted session.
	ingest(t, sess2, store, sineFrames(30, 2, 70))
	sess2.Close(store)

	m3, _ := OpenManager(cfg)
	recovered, _ := m3.Recover(testStoreCfg)
	if len(recovered) != 1 || recovered[0].Processed != 100 {
		t.Fatalf("final recovery: %d sessions, processed=%d", len(recovered), recovered[0].Processed)
	}

	// A shape mismatch must NOT adopt: same name, different channel count.
	m4, _ := OpenManager(cfg)
	m4.Recover(testStoreCfg)
	other := testMeta("glove", 3)
	sess4, store4, err := m4.Attach(other)
	if err != nil {
		t.Fatal(err)
	}
	if sess4.Resumed() || store4 != nil {
		t.Fatal("mismatched shape adopted a recovered session")
	}
	sess4.Close(nil)
}

// TestAttachDuplicateNamesGetDistinctKeys: two live sessions registering
// the same name coexist under distinct directories.
func TestAttachDuplicateNamesGetDistinctKeys(t *testing.T) {
	m, err := OpenManager(Config{Dir: t.TempDir(), Fsync: FsyncOff, SnapshotFrames: -1})
	if err != nil {
		t.Fatal(err)
	}
	meta := testMeta("dup", 1)
	a, _, err := m.Attach(meta)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := m.Attach(meta)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() == b.Key() {
		t.Fatalf("duplicate keys %q", a.Key())
	}
	a.Close(nil)
	b.Close(nil)
	// After release the base key is reusable.
	c, _, err := m.Attach(meta)
	if err != nil {
		t.Fatal(err)
	}
	if c.Key() != a.Key() {
		t.Fatalf("key %q not released (got %q)", a.Key(), c.Key())
	}
	c.Close(nil)
}

// TestSanitizeKey: hostile session names cannot escape the data dir.
func TestSanitizeKey(t *testing.T) {
	for name, want := range map[string]string{
		"../../etc/passwd": ".._.._etc_passwd",
		"..":               "session",
		"":                 "session",
		"glove 7/left":     "glove_7_left",
		"ok-name_1.2":      "ok-name_1.2",
	} {
		if got := sanitizeKey(name); got != want {
			t.Errorf("sanitizeKey(%q) = %q, want %q", name, got, want)
		}
	}
}

// TestSnapshotErrorKeepsWAL: when the snapshot path fails the WAL must
// remain intact so nothing is lost.
func TestSnapshotErrorKeepsWAL(t *testing.T) {
	dir := t.TempDir()
	snapErrs := 0
	cfg := Config{
		Dir: dir, Fsync: FsyncBatch, SnapshotFrames: -1,
		Observer: Observer{SnapshotError: func() { snapErrs++ }},
	}
	m, _ := OpenManager(cfg)
	meta := testMeta("frag", 1)
	sess, _, err := m.Attach(meta)
	if err != nil {
		t.Fatal(err)
	}
	ls, _ := core.NewLiveStore(meta.Mins, meta.Maxs, testStoreCfg)
	ingest(t, sess, ls, sineFrames(40, 1, 0))
	// Hide the session directory so the snapshot temp file cannot be
	// created (the WAL's already-open descriptor is unaffected).
	sdir := filepath.Join(dir, "frag")
	if err := os.Rename(sdir, sdir+".hidden"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Snapshot(ls); err == nil {
		t.Fatal("snapshot into missing dir succeeded")
	}
	if snapErrs != 1 {
		t.Fatalf("snapshot errors observed: %d", snapErrs)
	}
	if err := os.Rename(sdir+".hidden", sdir); err != nil {
		t.Fatal(err)
	}
	sess.Close(nil)

	m2, _ := OpenManager(Config{Dir: dir, SnapshotFrames: -1})
	recovered, err := m2.Recover(testStoreCfg)
	if err != nil || len(recovered) != 1 || recovered[0].Processed != 40 {
		t.Fatalf("recover after failed snapshot: %v", err)
	}
}
