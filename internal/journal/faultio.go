package journal

import (
	"errors"
	"os"
	"sync"
	"time"
)

// FaultPlan injects storage failures underneath the WAL through
// Config.OpenFile: torn writes at arbitrary byte offsets, silently
// flipped bits, and delayed or failing fsync. Offsets are cumulative
// across every file opened through the plan, so a test can aim a fault at
// a byte that lands mid-record regardless of segment rotation. It exists
// for recovery tests; production configs never set it.
type FaultPlan struct {
	mu        sync.Mutex
	written   int64
	tearAt    int64
	torn      bool
	flipAt    int64
	flipMask  byte
	flipDone  bool
	syncErr   error
	syncDelay time.Duration
	syncs     int
}

// ErrInjectedTear is returned by a write the plan tore short.
var ErrInjectedTear = errors.New("journal: injected torn write")

// NewFaultPlan returns a plan with no faults armed.
func NewFaultPlan() *FaultPlan { return &FaultPlan{tearAt: -1, flipAt: -1} }

// TearAt arms a torn write: the write crossing cumulative byte offset n
// persists only its prefix up to n and fails; every later write fails too
// until Heal is called (the disk stays "dead").
func (p *FaultPlan) TearAt(n int64) {
	p.mu.Lock()
	p.tearAt = n
	p.mu.Unlock()
}

// Heal clears a tear so writes succeed again.
func (p *FaultPlan) Heal() {
	p.mu.Lock()
	p.tearAt = -1
	p.torn = false
	p.mu.Unlock()
}

// FlipBit arms a silent corruption: the write covering cumulative byte
// offset n has mask XORed into that byte, and the write still succeeds.
func (p *FaultPlan) FlipBit(n int64, mask byte) {
	p.mu.Lock()
	p.flipAt = n
	p.flipMask = mask
	p.flipDone = false
	p.mu.Unlock()
}

// FailSync makes every subsequent Sync return err (nil restores success).
func (p *FaultPlan) FailSync(err error) {
	p.mu.Lock()
	p.syncErr = err
	p.mu.Unlock()
}

// DelaySync makes every subsequent Sync sleep d first.
func (p *FaultPlan) DelaySync(d time.Duration) {
	p.mu.Lock()
	p.syncDelay = d
	p.mu.Unlock()
}

// Syncs reports how many Sync calls reached the plan.
func (p *FaultPlan) Syncs() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.syncs
}

// Written reports cumulative bytes successfully written through the plan.
func (p *FaultPlan) Written() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.written
}

// Open creates a real file wrapped with the plan's faults; assign it to
// Config.OpenFile.
func (p *FaultPlan) Open(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, plan: p}, nil
}

type faultFile struct {
	f    *os.File
	plan *FaultPlan
}

func (ff *faultFile) Write(b []byte) (int, error) {
	p := ff.plan
	p.mu.Lock()
	if p.torn {
		p.mu.Unlock()
		return 0, ErrInjectedTear
	}
	data := b
	if !p.flipDone && p.flipAt >= 0 &&
		p.flipAt >= p.written && p.flipAt < p.written+int64(len(b)) {
		data = append([]byte(nil), b...)
		data[p.flipAt-p.written] ^= p.flipMask
		p.flipDone = true
	}
	if p.tearAt >= 0 && p.written+int64(len(b)) > p.tearAt {
		keep := p.tearAt - p.written
		if keep < 0 {
			keep = 0
		}
		p.torn = true
		p.mu.Unlock()
		n, _ := ff.f.Write(data[:keep])
		p.mu.Lock()
		p.written += int64(n)
		p.mu.Unlock()
		return n, ErrInjectedTear
	}
	p.mu.Unlock()
	n, err := ff.f.Write(data)
	p.mu.Lock()
	p.written += int64(n)
	p.mu.Unlock()
	return n, err
}

func (ff *faultFile) Sync() error {
	p := ff.plan
	p.mu.Lock()
	p.syncs++
	delay, serr := p.syncDelay, p.syncErr
	p.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if serr != nil {
		return serr
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }
