// Package journal is the AIMS middle tier's durability layer. An
// immersidata session is irreplaceable — a CyberGlove signing session or a
// Virtual-Classroom run cannot be re-captured — yet the ingest path keeps
// it only in memory until the session seals. This package makes a live
// session crash-safe with two cooperating mechanisms:
//
//   - a per-session, append-only, CRC32C-framed, segmented write-ahead log
//     the server writes each acquisition batch to before it reaches
//     core.LiveStore.AppendFrames, with a configurable fsync policy
//     (per-batch, interval-deferred, or off) and size-based segment
//     rotation; and
//   - periodic snapshots: the live store is sealed and serialised with
//     core.Store.WriteTo into a temp file, atomically renamed into place,
//     and the WAL is truncated up to the snapshot's frame watermark.
//
// On startup, Manager.Recover scans the data directory and rebuilds every
// session found there: the newest intact snapshot is loaded through
// core.ReadStore and inverse-transformed back into a count cube
// (core.RestoreLiveStore), then the WAL tail past the watermark is
// replayed through the normal AppendFrames path. Torn tails, short reads
// and corrupt frames are detected by the per-record CRC and the log is
// truncated at the last valid record instead of failing recovery.
//
// Under disk backpressure a session degrades according to policy: block
// (the consumer stalls, the bounded ingest queue fills, and the device
// feels TCP backpressure — lossless) or shed durability (ingest continues
// un-journaled and the degradation is counted). A later successful
// snapshot restores durability by rotating onto a fresh segment at the new
// watermark.
package journal

import (
	"fmt"
	"io"
	"os"
	"time"
)

// FsyncPolicy selects when the WAL is flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncBatch syncs after every appended batch: a flush-acked frame is
	// durable. The safest and slowest policy.
	FsyncBatch FsyncPolicy = iota
	// FsyncInterval defers the sync to a timer (Config.FsyncInterval): a
	// crash loses at most the last interval's frames.
	FsyncInterval
	// FsyncOff never syncs explicitly; the OS page cache decides. A crash
	// of the process alone loses nothing (the kernel still holds the
	// writes); a machine crash loses the unflushed tail.
	FsyncOff
)

// ParseFsyncPolicy maps the flag spelling to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "batch":
		return FsyncBatch, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("journal: unknown fsync policy %q (want batch|interval|off)", s)
}

// String names the policy for logs.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncBatch:
		return "batch"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("fsync(%d)", int(p))
}

// DegradePolicy selects what happens when the WAL cannot accept writes
// (disk full, I/O errors, failed fsync).
type DegradePolicy int

const (
	// DegradeBlock retries the write, stalling the session's acquisition
	// consumer: the bounded ingest queue fills and the device feels the
	// backpressure. Lossless, at the price of ingest latency.
	DegradeBlock DegradePolicy = iota
	// DegradeShed drops durability for the session but keeps ingesting:
	// frames continue into the live store un-journaled and the degradation
	// is reported through the Observer. A later successful snapshot
	// restores durability.
	DegradeShed
)

// ParseDegradePolicy maps the flag spelling to a policy.
func ParseDegradePolicy(s string) (DegradePolicy, error) {
	switch s {
	case "block":
		return DegradeBlock, nil
	case "shed":
		return DegradeShed, nil
	}
	return 0, fmt.Errorf("journal: unknown durability policy %q (want block|shed)", s)
}

// File is the subset of *os.File the WAL needs. The indirection exists so
// tests can inject fault-laden implementations (torn writes, failing
// fsync) underneath an otherwise untouched WAL.
type File interface {
	io.Writer
	io.Closer
	Sync() error
}

// Observer receives the journal's operational signals. Every field is
// optional; the middle tier wires them onto its metrics registry.
type Observer struct {
	// FsyncSeconds reports each fsync's wall time.
	FsyncSeconds func(seconds float64)
	// AppendBytes reports bytes framed onto the WAL (headers included).
	AppendBytes func(n int)
	// SnapshotSeconds reports each successful snapshot's wall time
	// (seal + serialise + rename + truncate).
	SnapshotSeconds func(seconds float64)
	// SnapshotError reports a failed snapshot attempt.
	SnapshotError func()
	// Degraded reports a session shedding durability.
	Degraded func()
	// Healed reports a degraded session restored by a snapshot.
	Healed func()
}

// Config shapes the durability layer.
type Config struct {
	// Dir is the data directory (one subdirectory per session). Empty
	// disables journaling entirely.
	Dir string
	// Fsync is the WAL flush policy (default FsyncBatch).
	Fsync FsyncPolicy
	// FsyncInterval is the deferred-sync period under FsyncInterval
	// (default 100 ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates the WAL onto a new segment file once the
	// current one exceeds this size (default 8 MiB).
	SegmentBytes int64
	// SnapshotFrames snapshots a session every N processed frames
	// (default 65536; negative disables periodic snapshots — the final
	// snapshot at session close still runs).
	SnapshotFrames int
	// Degrade selects the disk-backpressure behaviour (default
	// DegradeBlock).
	Degrade DegradePolicy
	// OpenFile creates WAL segment files (default os.OpenFile with
	// O_CREATE|O_WRONLY|O_EXCL). Tests inject fault harnesses here.
	OpenFile func(path string) (File, error)
	// Observer receives operational signals; zero value discards them.
	Observer Observer
	// Logf receives recovery and degradation logs (nil discards).
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 100 * time.Millisecond
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 8 << 20
	}
	if c.SnapshotFrames == 0 {
		c.SnapshotFrames = 65536
	}
	if c.OpenFile == nil {
		c.OpenFile = func(path string) (File, error) {
			return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}
