package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"aims/internal/stream"
	"aims/internal/wire"
)

// WAL on-disk format. Each segment file is
//
//	magic "AIMSWAL1" | firstFrame u64 |            (segment header)
//	{ length u32 | crc32c u32 | type u8 | body }…  (records)
//
// in little-endian byte order. length counts the type byte plus the body;
// the CRC (Castagnoli polynomial) covers the same span, so a torn tail, a
// short read or a flipped bit anywhere in a record is detected and the log
// is truncated at the last intact record. A frames record's body is the
// wire batch encoding with Seq carrying the absolute index of the record's
// first frame in the session's processed-frame order — replay uses it to
// skip frames already covered by a snapshot and to tolerate gaps left by a
// degraded (durability-shedding) period.

var walMagic = [8]byte{'A', 'I', 'M', 'S', 'W', 'A', 'L', '1'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

const (
	walHeaderSize  = 16
	recHeaderSize  = 9
	recFrames      = byte(1)
	recAck         = byte(2) // body = u64 client-stream watermark
	maxRecordBytes = wire.MaxPayload + 1 // type byte + a maximal wire batch
)

const segPrefix = "wal-"

func segName(seq int) string { return fmt.Sprintf("%s%08d.log", segPrefix, seq) }

// segSeq parses a segment file name; ok=false for non-segment files.
func segSeq(name string) (int, bool) {
	var seq int
	if n, err := fmt.Sscanf(name, segPrefix+"%08d.log", &seq); n == 1 && err == nil {
		return seq, true
	}
	return 0, false
}

// listSegments returns the directory's WAL segment sequence numbers in
// ascending order.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, e := range entries {
		if seq, ok := segSeq(e.Name()); ok && !e.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// wal is one session's segmented write-ahead log, append side. A single
// goroutine (the session's acquisition consumer) appends; the mutex exists
// for the deferred-fsync timer and Close.
type wal struct {
	dir string
	cfg Config

	mu         sync.Mutex
	f          File
	seq        int
	size       int64
	dirty      bool
	timerArmed bool
	needRotate bool  // last write failed mid-record: rotate before reuse
	asyncErr   error // deferred-fsync failure, surfaced on the next append

	scratch []byte // record build buffer, reused across appends
}

// openWAL starts appending to a fresh segment numbered after any existing
// ones, whose records begin at absolute frame index firstFrame.
func openWAL(dir string, firstFrame uint64, cfg Config) (*wal, error) {
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if len(seqs) > 0 {
		next = seqs[len(seqs)-1] + 1
	}
	w := &wal{dir: dir, cfg: cfg, seq: next - 1}
	if err := w.rotateLocked(firstFrame); err != nil {
		return nil, err
	}
	return w, nil
}

// rotateLocked closes the current segment and opens the next, writing its
// header. Callers hold w.mu (or own the wal exclusively).
func (w *wal) rotateLocked(firstFrame uint64) error {
	if w.f != nil {
		switch {
		case w.cfg.Fsync == FsyncInterval && w.dirty:
			// Retire the old segment off the append path: an inline sync
			// here stalls ingest for a full device flush of the segment.
			go func(f File) {
				if err := f.Sync(); err != nil {
					w.noteAsyncErr(err)
				}
				f.Close()
			}(w.f)
		case w.cfg.Fsync == FsyncBatch && w.dirty:
			w.syncLocked() // best effort; the old segment is already on disk
			w.f.Close()
		default:
			// Clean, or FsyncOff: flushing is the page cache's business.
			w.f.Close()
		}
		w.f = nil
	}
	seq := w.seq + 1
	f, err := w.cfg.OpenFile(filepath.Join(w.dir, segName(seq)))
	if err != nil {
		return err
	}
	var hdr [walHeaderSize]byte
	copy(hdr[:8], walMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], firstFrame)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(filepath.Join(w.dir, segName(seq)))
		return err
	}
	w.f = f
	w.seq = seq
	w.size = walHeaderSize
	w.dirty = true
	w.needRotate = false
	return nil
}

// append frames one record carrying the batch whose first frame has
// absolute index startFrame, rotating and syncing per policy.
func (w *wal) append(startFrame uint64, frames []stream.Frame, width int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	// Build the record in the reused scratch buffer: 9 header bytes, then
	// the body encoded in place (no intermediate allocation or copy).
	rec := append(w.scratch[:0], make([]byte, recHeaderSize)...)
	rec, err := wire.AppendBatch(rec, startFrame, frames, width)
	if err != nil {
		return err
	}
	w.scratch = rec
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(rec)-8)) // type byte + body
	rec[8] = recFrames
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(rec[8:], crcTable))

	if err := w.asyncErr; err != nil {
		w.asyncErr = nil
		w.needRotate = true
		return err
	}
	if w.needRotate || w.size >= w.cfg.SegmentBytes {
		// Either the previous write tore a record into the current segment
		// (recovery will CRC-stop there) or the segment is full; both cases
		// continue on a fresh file.
		if err := w.rotateLocked(startFrame); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(rec); err != nil {
		w.needRotate = true
		return err
	}
	w.size += int64(len(rec))
	w.dirty = true
	if w.cfg.Observer.AppendBytes != nil {
		w.cfg.Observer.AppendBytes(len(rec))
	}
	switch w.cfg.Fsync {
	case FsyncBatch:
		return w.syncLocked()
	case FsyncInterval:
		if !w.timerArmed {
			w.timerArmed = true
			time.AfterFunc(w.cfg.FsyncInterval, w.timedSync)
		}
	}
	return nil
}

// appendAck records the session's client-stream watermark. It is written
// when the server acknowledges frames it will never journal (a shed), so
// recovery can restore the exactly-once dedup point even though those
// frames are absent from the log. nextFrame is the absolute index the next
// frames record would carry — it seeds the segment header on rotation.
// Replayers predating this record type skip it by its CRC-verified length.
func (w *wal) appendAck(ack, nextFrame uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var rec [recHeaderSize + 8]byte
	binary.LittleEndian.PutUint32(rec[0:4], 9) // type byte + u64 body
	rec[8] = recAck
	binary.LittleEndian.PutUint64(rec[9:], ack)
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(rec[8:], crcTable))

	if err := w.asyncErr; err != nil {
		w.asyncErr = nil
		w.needRotate = true
		return err
	}
	if w.needRotate || w.size >= w.cfg.SegmentBytes {
		if err := w.rotateLocked(nextFrame); err != nil {
			return err
		}
	}
	if _, err := w.f.Write(rec[:]); err != nil {
		w.needRotate = true
		return err
	}
	w.size += int64(len(rec))
	w.dirty = true
	if w.cfg.Observer.AppendBytes != nil {
		w.cfg.Observer.AppendBytes(len(rec))
	}
	switch w.cfg.Fsync {
	case FsyncBatch:
		return w.syncLocked()
	case FsyncInterval:
		if !w.timerArmed {
			w.timerArmed = true
			time.AfterFunc(w.cfg.FsyncInterval, w.timedSync)
		}
	}
	return nil
}

// timedSync runs the deferred fsync outside the append lock so a slow
// device flush never stalls ingest. The dirty flag is surrendered before
// syncing: a write landing mid-sync re-marks it (and re-arms the timer on
// its append), so it is covered by the next interval even if this flush
// missed it.
func (w *wal) timedSync() {
	w.mu.Lock()
	w.timerArmed = false
	f := w.f
	if !w.dirty || f == nil {
		w.mu.Unlock()
		return
	}
	w.dirty = false
	w.mu.Unlock()

	t0 := time.Now()
	err := f.Sync()
	if w.cfg.Observer.FsyncSeconds != nil {
		w.cfg.Observer.FsyncSeconds(time.Since(t0).Seconds())
	}
	if err != nil && !errors.Is(err, os.ErrClosed) {
		// A rotation may close the segment mid-sync; that is not a
		// durability failure (the rotation path syncs retiring segments).
		w.noteAsyncErr(err)
	}
}

// noteAsyncErr records a background sync failure for the next append to
// surface (and degrade on, per policy).
func (w *wal) noteAsyncErr(err error) {
	w.mu.Lock()
	if w.asyncErr == nil {
		w.asyncErr = err
	}
	w.mu.Unlock()
}

func (w *wal) syncLocked() error {
	t0 := time.Now()
	err := w.f.Sync()
	if w.cfg.Observer.FsyncSeconds != nil {
		w.cfg.Observer.FsyncSeconds(time.Since(t0).Seconds())
	}
	if err == nil {
		w.dirty = false
	}
	return err
}

// sync forces the current segment to stable storage.
func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil || !w.dirty {
		return nil
	}
	return w.syncLocked()
}

// close syncs and closes the current segment.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	var err error
	if w.dirty {
		err = w.syncLocked()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// truncateBelow deletes segments made fully redundant by a snapshot at the
// given frame watermark: a segment may go once the NEXT segment starts at
// or below the watermark (so every record it holds is covered). The open
// (last) segment is never deleted.
func (w *wal) truncateBelow(watermark uint64) error {
	w.mu.Lock()
	cur := w.seq
	w.mu.Unlock()
	seqs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(seqs); i++ {
		if seqs[i] >= cur {
			break
		}
		nextFirst, err := readSegmentFirstFrame(filepath.Join(w.dir, segName(seqs[i+1])))
		if err != nil || nextFirst > watermark {
			break
		}
		if err := os.Remove(filepath.Join(w.dir, segName(seqs[i]))); err != nil {
			return err
		}
	}
	return nil
}

func readSegmentFirstFrame(path string) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, err
	}
	if [8]byte(hdr[:8]) != walMagic {
		return 0, fmt.Errorf("journal: bad segment magic in %s", filepath.Base(path))
	}
	return binary.LittleEndian.Uint64(hdr[8:]), nil
}

// replayResult reports one directory's WAL replay.
type replayResult struct {
	// processed is the absolute frame index after the last replayed
	// record (the recovered session's processed-frame count).
	processed uint64
	// truncated reports that a torn tail / corrupt record was found and
	// the log was cut back to the last valid record.
	truncated bool
	// ackSeq is the highest client-stream watermark found in ack records
	// (0 when none): frames the server acknowledged but shed.
	ackSeq uint64
}

// replayWAL streams every intact frames record at or above the watermark
// through fn, in processed-frame order. Records wholly below the watermark
// are skipped; a record straddling it is delivered with its covered prefix
// trimmed. Corruption anywhere — bad segment header, short read, CRC
// mismatch, undecodable body, out-of-order frame index — truncates the log
// at the last valid record: the offending segment is cut back and all
// later segments are dropped, because records past a tear cannot be
// trusted to be gap-free.
func replayWAL(dir string, watermark uint64, width int, fn func(startFrame uint64, frames []stream.Frame) error) (replayResult, error) {
	res := replayResult{processed: watermark}
	seqs, err := listSegments(dir)
	if err != nil {
		return res, err
	}
	expect := uint64(0) // next frame index an intact log would carry
	for i, seq := range seqs {
		path := filepath.Join(dir, segName(seq))
		keepFrom, segEnd, corrupt, err := replaySegment(path, watermark, width, &expect, &res, fn)
		if err != nil {
			return res, err
		}
		if corrupt {
			res.truncated = true
			if keepFrom == 0 {
				// Nothing valid in this segment (bad header or first
				// record): drop the file entirely.
				os.Remove(path)
			} else if keepFrom < segEnd {
				os.Truncate(path, keepFrom)
			}
			for _, later := range seqs[i+1:] {
				os.Remove(filepath.Join(dir, segName(later)))
			}
			break
		}
	}
	return res, nil
}

// replaySegment scans one segment. It returns the byte offset up to which
// the file is intact (0 if even the header is bad), the scanned size, and
// whether a corrupt record cut the scan short.
func replaySegment(path string, watermark uint64, width int, expect *uint64, res *replayResult, fn func(uint64, []stream.Frame) error) (keepFrom, segEnd int64, corrupt bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()
	br := newByteCounter(f)

	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil || [8]byte(hdr[:8]) != walMagic {
		return 0, br.n, true, nil
	}
	first := binary.LittleEndian.Uint64(hdr[8:])
	if first < *expect {
		// A segment rewinding the frame clock cannot be trusted.
		return 0, br.n, true, nil
	}
	*expect = first
	good := br.n

	var rh [recHeaderSize]byte
	for {
		if _, err := io.ReadFull(br, rh[:]); err != nil {
			return good, br.n, err != io.EOF, nil // EOF at a boundary is a clean end
		}
		length := binary.LittleEndian.Uint32(rh[0:4])
		if length == 0 || length > maxRecordBytes {
			return good, br.n, true, nil
		}
		want := binary.LittleEndian.Uint32(rh[4:8])
		body := make([]byte, length-1)
		crc := crc32.Checksum(rh[8:9], crcTable)
		if _, err := io.ReadFull(br, body); err != nil {
			return good, br.n, true, nil
		}
		if crc32.Update(crc, crcTable, body) != want {
			return good, br.n, true, nil
		}
		if rh[8] == recAck {
			if len(body) != 8 {
				return good, br.n, true, nil
			}
			if a := binary.LittleEndian.Uint64(body); a > res.ackSeq {
				res.ackSeq = a
			}
			good = br.n
			continue
		}
		if rh[8] != recFrames {
			// Unknown record type from a future format revision: skip it
			// (the CRC already vouched for its integrity).
			good = br.n
			continue
		}
		b, err := wire.DecodeBatch(body, width)
		if err != nil {
			return good, br.n, true, nil
		}
		if b.Seq < *expect {
			// Frame indices never go backwards in an intact log; gaps
			// (from a degraded period) are allowed, overlaps are not.
			return good, br.n, true, nil
		}
		*expect = b.Seq + uint64(len(b.Frames))
		good = br.n
		end := b.Seq + uint64(len(b.Frames))
		if end > watermark {
			frames := b.Frames
			start := b.Seq
			if start < watermark {
				frames = frames[watermark-start:]
				start = watermark
			}
			if err := fn(start, frames); err != nil {
				return good, br.n, false, err
			}
			res.processed = end
		}
	}
}

// byteCounter counts bytes consumed from the underlying reader so the
// replay can truncate at exact record boundaries.
type byteCounter struct {
	r io.Reader
	n int64
}

func newByteCounter(r io.Reader) *byteCounter { return &byteCounter{r: r} }

func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}
