package journal

import (
	"sync/atomic"
	"time"

	"aims/internal/core"
	"aims/internal/stream"
)

// Session is one live session's durability handle: its WAL append side
// plus snapshot bookkeeping. A single goroutine — the session's
// acquisition consumer — calls AppendFrames, MaybeSnapshot and Close;
// Processed/Degraded/Resumed are safe from any goroutine (the admin plane
// reads them).
type Session struct {
	key   string
	dir   string
	cfg   Config
	meta  Meta
	wal   *wal
	width int

	processed  atomic.Uint64 // frames seen in consumer order (journaled or shed)
	snapFrames atomic.Uint64 // watermark of the newest snapshot
	clientSeq  atomic.Uint64 // highest acked client-stream offset (≥ processed when shedding)
	degraded   atomic.Bool
	resumed    bool
	mgr        *Manager
}

// Key returns the session's directory key under the data dir.
func (s *Session) Key() string { return s.key }

// Resumed reports whether this handle adopted a recovered session.
func (s *Session) Resumed() bool { return s.resumed }

// Processed returns the frames seen so far in consumer order, including
// any journaled by a previous incarnation before a crash.
func (s *Session) Processed() uint64 { return s.processed.Load() }

// Degraded reports whether the session has shed durability after a disk
// failure. A successful snapshot heals it.
func (s *Session) Degraded() bool { return s.degraded.Load() }

// AppendFrames journals one acquisition batch before the caller appends it
// to the live store. The frames count toward the session's processed order
// whether or not the write lands, so snapshot watermarks stay truthful
// even while durability is shed.
//
// On a write failure the behaviour follows Config.Degrade: DegradeBlock
// retries (stalling the caller — the bounded ingest queue then applies
// device backpressure) for as long as keepTrying returns true, then
// degrades; DegradeShed degrades immediately. Degradation is reported once
// through the Observer.
func (s *Session) AppendFrames(frames []stream.Frame, keepTrying func() bool) {
	start := s.processed.Load()
	s.processed.Store(start + uint64(len(frames)))
	if s.degraded.Load() {
		return
	}
	for {
		err := s.wal.append(start, frames, s.width)
		if err == nil {
			return
		}
		if s.cfg.Degrade == DegradeBlock && keepTrying != nil && keepTrying() {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		s.cfg.Logf("journal: session %s shedding durability: %v", s.key, err)
		if s.degraded.CompareAndSwap(false, true) && s.cfg.Observer.Degraded != nil {
			s.cfg.Observer.Degraded()
		}
		return
	}
}

// ClientSeq returns the session's acknowledged client-stream watermark:
// the offset below which every frame the device sent has been either
// journaled or knowingly shed. It equals Processed unless load shedding
// dropped acknowledged frames, and it is the resume point a reconnecting
// v4 device is told about (Welcome.AckSeq).
func (s *Session) ClientSeq() uint64 {
	if c := s.clientSeq.Load(); c > s.processed.Load() {
		return c
	}
	return s.processed.Load()
}

// RecordAck persists a client-stream watermark that ran ahead of the
// journaled frame count — the server acknowledged frames (as shed) that
// will never reach the log. Best-effort: losing the record merely lets a
// resuming device re-offer those frames, and the second offer may even
// store them.
func (s *Session) RecordAck(clientSeq uint64) {
	if clientSeq <= s.clientSeq.Load() {
		return
	}
	s.clientSeq.Store(clientSeq)
	if s.degraded.Load() {
		return
	}
	if err := s.wal.appendAck(clientSeq, s.processed.Load()); err != nil {
		s.cfg.Logf("journal: session %s ack record failed: %v", s.key, err)
	}
}

// MaybeSnapshot snapshots the live store once SnapshotFrames new frames
// have been processed since the last snapshot. It reports whether a
// snapshot was attempted.
func (s *Session) MaybeSnapshot(ls *core.LiveStore) bool {
	if s.cfg.SnapshotFrames < 0 {
		return false
	}
	if s.processed.Load()-s.snapFrames.Load() < uint64(s.cfg.SnapshotFrames) {
		return false
	}
	s.Snapshot(ls)
	return true
}

// Snapshot seals the live store, writes it atomically, truncates the WAL
// to the new watermark, and — if the session had shed durability — rotates
// onto a fresh segment to restore it.
func (s *Session) Snapshot(ls *core.LiveStore) error {
	t0 := time.Now()
	// The caller is the acquisition consumer, so the store holds exactly
	// the processed frames: the watermark is read before sealing.
	watermark := s.processed.Load()
	st, err := ls.Seal()
	if err == nil {
		_, err = writeSnapshot(s.dir, watermark, st)
	}
	if err != nil {
		s.cfg.Logf("journal: session %s snapshot failed: %v", s.key, err)
		if s.cfg.Observer.SnapshotError != nil {
			s.cfg.Observer.SnapshotError()
		}
		return err
	}
	s.snapFrames.Store(watermark)
	if err := s.wal.truncateBelow(watermark); err != nil {
		s.cfg.Logf("journal: session %s wal truncation: %v", s.key, err)
	}
	if s.degraded.Load() {
		// Everything up to the watermark is durable again; restart the log
		// there so the journaled stream stays gap-free from this point.
		s.wal.mu.Lock()
		err := s.wal.rotateLocked(watermark)
		s.wal.mu.Unlock()
		if err == nil {
			s.degraded.Store(false)
			if s.cfg.Observer.Healed != nil {
				s.cfg.Observer.Healed()
			}
		}
	}
	if s.cfg.Observer.SnapshotSeconds != nil {
		s.cfg.Observer.SnapshotSeconds(time.Since(t0).Seconds())
	}
	return nil
}

// Close makes the session durable one final time and releases its files:
// a final snapshot if frames arrived since the last one (falling back to a
// WAL sync if the snapshot fails), then the WAL is closed and the
// session's key released for a future reconnect to adopt.
func (s *Session) Close(ls *core.LiveStore) error {
	var err error
	if ls != nil && s.processed.Load() > s.snapFrames.Load() {
		if serr := s.Snapshot(ls); serr != nil {
			err = serr
			if ferr := s.wal.sync(); ferr != nil {
				s.cfg.Logf("journal: session %s final sync failed: %v", s.key, ferr)
			}
		}
	}
	if cerr := s.wal.close(); err == nil {
		err = cerr
	}
	if s.mgr != nil {
		s.mgr.release(s.key)
	}
	return err
}
