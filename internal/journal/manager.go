package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"aims/internal/core"
	"aims/internal/stream"
)

// Manager owns the data directory: one subdirectory per session, holding
// meta.json, snap-*.aims snapshots and wal-*.log segments. It recovers
// sessions at startup, hands out Session handles at registration, and
// matches reconnecting devices to their recovered state by session name.
type Manager struct {
	cfg Config

	mu      sync.Mutex
	active  map[string]bool
	orphans map[string]*Recovered
}

// Recovered is a session rebuilt from disk at startup, waiting for its
// device to reconnect (or for an operator to query it via adoption).
type Recovered struct {
	Key       string
	Meta      Meta
	Store     *core.LiveStore
	Processed uint64 // frames in Store after snapshot + WAL replay
	Watermark uint64 // frames covered by the snapshot alone
	AckSeq    uint64 // acknowledged client-stream watermark (≥ Processed when frames were shed)
	Truncated bool   // a torn/corrupt WAL tail was cut during replay
}

// OpenManager creates (if needed) the data directory and returns a
// Manager. Call Recover before serving to adopt any prior state.
func OpenManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("journal: empty data dir")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	return &Manager{
		cfg:     cfg,
		active:  map[string]bool{},
		orphans: map[string]*Recovered{},
	}, nil
}

// Recover scans the data directory and rebuilds every session found
// there: newest intact snapshot (if any) inverse-transformed back into a
// live store, then the WAL tail replayed through AppendFrames. Sessions
// that cannot be recovered at all are logged and left on disk untouched.
// storeCfg supplies the non-shape knobs (seal threshold, observer); the
// shape comes from each session's own meta/snapshot.
func (m *Manager) Recover(storeCfg core.LiveStoreConfig) ([]*Recovered, error) {
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		return nil, err
	}
	var out []*Recovered
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rec, err := m.recoverSession(e.Name(), storeCfg)
		if err != nil {
			m.cfg.Logf("journal: session dir %s not recoverable: %v", e.Name(), err)
			continue
		}
		m.mu.Lock()
		m.orphans[rec.Key] = rec
		m.mu.Unlock()
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

func (m *Manager) recoverSession(key string, storeCfg core.LiveStoreConfig) (*Recovered, error) {
	dir := filepath.Join(m.cfg.Dir, key)
	meta, err := readMeta(dir)
	if err != nil {
		return nil, err
	}
	cfg := storeCfg
	cfg.Rate = meta.Rate
	cfg.HorizonTicks = meta.HorizonTicks
	cfg.TimeBuckets = meta.TimeBuckets
	cfg.ValueBins = meta.ValueBins

	ls, watermark, ok := loadLatestSnapshot(dir, cfg, m.cfg.Logf)
	if !ok {
		watermark = 0
		ls, err = core.NewLiveStore(meta.Mins, meta.Maxs, cfg)
		if err != nil {
			return nil, err
		}
	}
	res, err := replayWAL(dir, watermark, meta.Channels(), func(start uint64, frames []stream.Frame) error {
		// Per-frame validation errors are deterministic (the original
		// ingest skipped the same frames), so they are not corruption.
		ls.AppendFrames(frames)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if res.truncated {
		m.cfg.Logf("journal: session %s: WAL tail truncated at last valid record", key)
	}
	ack := res.processed
	if res.ackSeq > ack {
		ack = res.ackSeq
	}
	return &Recovered{
		Key:       key,
		Meta:      meta,
		Store:     ls,
		Processed: res.processed,
		Watermark: watermark,
		AckSeq:    ack,
		Truncated: res.truncated,
	}, nil
}

// OrphanCount reports recovered sessions not yet re-adopted by a device.
func (m *Manager) OrphanCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.orphans)
}

// Orphans returns the recovered sessions awaiting adoption, sorted by key.
func (m *Manager) Orphans() []*Recovered {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Recovered, 0, len(m.orphans))
	for _, r := range m.orphans {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Attach registers a session with the durability layer. If a recovered
// session with the same (sanitized) name and a matching shape (channel
// count and rate) is waiting, it is adopted: the returned store is the
// recovered one, the WAL resumes at the recovered frame index, and
// Session.Resumed reports true. Otherwise a fresh session directory is
// created (any stale leftover under the same key is moved aside, never
// deleted).
func (m *Manager) Attach(meta Meta) (*Session, *core.LiveStore, error) {
	if meta.Created.IsZero() {
		meta.Created = time.Now().UTC()
	}
	base := sanitizeKey(meta.Name)

	m.mu.Lock()
	key := base
	for n := 2; m.active[key]; n++ {
		key = fmt.Sprintf("%s~%d", base, n)
	}
	m.active[key] = true
	orphan := m.orphans[key]
	if orphan != nil {
		if orphan.Meta.Channels() == meta.Channels() && orphan.Meta.Rate == meta.Rate {
			delete(m.orphans, key)
		} else {
			orphan = nil
		}
	}
	m.mu.Unlock()

	sess, ls, err := m.attachDisk(key, meta, orphan)
	if err != nil {
		m.release(key)
		if orphan != nil {
			// Put the orphan back so a retry can still find it.
			m.mu.Lock()
			m.orphans[key] = orphan
			m.mu.Unlock()
		}
		return nil, nil, err
	}
	return sess, ls, nil
}

func (m *Manager) attachDisk(key string, meta Meta, orphan *Recovered) (*Session, *core.LiveStore, error) {
	dir := filepath.Join(m.cfg.Dir, key)
	if orphan != nil {
		w, err := openWAL(dir, orphan.Processed, m.cfg)
		if err != nil {
			return nil, nil, err
		}
		s := &Session{
			key: key, dir: dir, cfg: m.cfg, meta: orphan.Meta,
			wal: w, width: orphan.Meta.Channels(), resumed: true, mgr: m,
		}
		s.processed.Store(orphan.Processed)
		s.snapFrames.Store(orphan.Watermark)
		s.clientSeq.Store(orphan.AckSeq)
		return s, orphan.Store, nil
	}
	// A leftover directory here belongs to an unrecoverable or
	// shape-mismatched prior session; preserve it out of the way.
	if _, err := os.Stat(dir); err == nil {
		if err := moveAside(dir); err != nil {
			return nil, nil, err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	if err := writeMeta(dir, meta); err != nil {
		return nil, nil, err
	}
	w, err := openWAL(dir, 0, m.cfg)
	if err != nil {
		return nil, nil, err
	}
	s := &Session{
		key: key, dir: dir, cfg: m.cfg, meta: meta,
		wal: w, width: meta.Channels(), mgr: m,
	}
	return s, nil, nil
}

func (m *Manager) release(key string) {
	m.mu.Lock()
	delete(m.active, key)
	m.mu.Unlock()
}

func moveAside(dir string) error {
	for i := 1; ; i++ {
		cand := fmt.Sprintf("%s.stale%d", dir, i)
		if _, err := os.Stat(cand); os.IsNotExist(err) {
			return os.Rename(dir, cand)
		}
	}
}

// sanitizeKey maps an arbitrary session name onto a safe directory name.
func sanitizeKey(name string) string {
	const maxKey = 64
	b := make([]byte, 0, len(name))
	for i := 0; i < len(name) && len(b) < maxKey; i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	// "." and ".." would escape the data dir; all-dots collapses to "_".
	allDots := true
	for _, c := range b {
		if c != '.' {
			allDots = false
			break
		}
	}
	if len(b) == 0 || allDots {
		return "session"
	}
	return string(b)
}
