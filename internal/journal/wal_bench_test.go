package journal

import (
	"testing"

	"aims/internal/stream"
)

// BenchmarkWALAppend measures the page-cache append cost (FsyncOff) for
// one 256-frame × 8-channel batch — the per-batch tax the WAL adds to the
// ingest path between fsyncs.
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	w, err := openWAL(dir, 0, Config{Fsync: FsyncOff}.withDefaults())
	if err != nil {
		b.Fatal(err)
	}
	defer w.close()
	const batch, channels = 256, 8
	frames := make([]stream.Frame, batch)
	for i := range frames {
		vals := make([]float64, channels)
		for c := range vals {
			vals[c] = float64(i + c)
		}
		frames[i] = stream.Frame{T: float64(i) / 1000, Values: vals}
	}
	b.SetBytes(batch * (channels + 1) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.append(uint64(i*batch), frames, channels); err != nil {
			b.Fatal(err)
		}
	}
}
