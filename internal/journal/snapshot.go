package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"aims/internal/core"
)

// Meta is the session's registration record, written once (atomically) at
// session creation as meta.json. It carries everything recovery needs to
// rebuild an identically-shaped live store when no snapshot exists yet,
// and everything adoption needs to match a reconnecting device to its
// recovered session.
type Meta struct {
	Name         string    `json:"name"`
	Rate         float64   `json:"rate_hz"`
	HorizonTicks int       `json:"horizon_ticks"`
	TimeBuckets  int       `json:"time_buckets"`
	ValueBins    int       `json:"value_bins"`
	Mins         []float64 `json:"mins"`
	Maxs         []float64 `json:"maxs"`
	Created      time.Time `json:"created"`
}

// Channels returns the registered channel count.
func (m Meta) Channels() int { return len(m.Mins) }

const metaName = "meta.json"

func writeMeta(dir string, m Meta) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(dir, metaName, b)
}

func readMeta(dir string) (Meta, error) {
	b, err := os.ReadFile(filepath.Join(dir, metaName))
	if err != nil {
		return Meta{}, err
	}
	var m Meta
	if err := json.Unmarshal(b, &m); err != nil {
		return Meta{}, fmt.Errorf("journal: corrupt %s: %w", metaName, err)
	}
	if m.Channels() == 0 || len(m.Mins) != len(m.Maxs) || m.Rate <= 0 {
		return Meta{}, fmt.Errorf("journal: implausible %s (channels=%d rate=%v)", metaName, m.Channels(), m.Rate)
	}
	return m, nil
}

// Snapshot files are named snap-<frames>-<crc>.aims: the frame watermark
// orders them and the whole-file CRC32C lets recovery reject a bit-flipped
// snapshot before core.ReadStore ever parses it (falling back to the next
// older one).

const snapPrefix = "snap-"

func snapName(frames uint64, crc uint32) string {
	return fmt.Sprintf("%s%016x-%08x.aims", snapPrefix, frames, crc)
}

func parseSnapName(name string) (frames uint64, crc uint32, ok bool) {
	if n, err := fmt.Sscanf(name, snapPrefix+"%016x-%08x.aims", &frames, &crc); n == 2 && err == nil {
		return frames, crc, true
	}
	return 0, 0, false
}

// writeSnapshot serialises a sealed store, fsyncs it under a temp name,
// atomically renames it into place, syncs the directory, and removes any
// older snapshots. It returns the snapshot's byte size.
func writeSnapshot(dir string, frames uint64, st *core.Store) (int64, error) {
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		return 0, err
	}
	crc := crc32.Checksum(buf.Bytes(), crcTable)
	if err := atomicWrite(dir, snapName(frames, crc), buf.Bytes()); err != nil {
		return 0, err
	}
	// Older snapshots are now redundant; losing this cleanup to a crash is
	// harmless (recovery always prefers the newest intact one).
	entries, err := os.ReadDir(dir)
	if err != nil {
		return int64(buf.Len()), nil
	}
	for _, e := range entries {
		if f, _, ok := parseSnapName(e.Name()); ok && f < frames {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return int64(buf.Len()), nil
}

// loadLatestSnapshot returns the newest snapshot that passes its CRC,
// parses, and inverse-transforms back into a live store, together with its
// frame watermark. ok=false when the directory has no usable snapshot
// (cfg's shape knobs are then taken from meta instead).
func loadLatestSnapshot(dir string, cfg core.LiveStoreConfig, logf func(string, ...interface{})) (ls *core.LiveStore, frames uint64, ok bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, false
	}
	type snap struct {
		name   string
		frames uint64
		crc    uint32
	}
	var snaps []snap
	for _, e := range entries {
		if f, c, okk := parseSnapName(e.Name()); okk {
			snaps = append(snaps, snap{e.Name(), f, c})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].frames > snaps[j].frames })
	for _, s := range snaps {
		b, err := os.ReadFile(filepath.Join(dir, s.name))
		if err != nil {
			logf("journal: snapshot %s unreadable: %v", s.name, err)
			continue
		}
		if crc32.Checksum(b, crcTable) != s.crc {
			logf("journal: snapshot %s failed CRC, trying older", s.name)
			continue
		}
		st, err := core.ReadStore(bytes.NewReader(b))
		if err != nil {
			logf("journal: snapshot %s unparsable: %v", s.name, err)
			continue
		}
		live, err := core.RestoreLiveStore(st, cfg)
		if err != nil {
			logf("journal: snapshot %s not restorable: %v", s.name, err)
			continue
		}
		return live, s.frames, true
	}
	return nil, 0, false
}

// atomicWrite writes name under dir via a temp file + fsync + rename +
// directory sync, so the file either exists whole or not at all.
func atomicWrite(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	d.Close()
	return err
}
