package journal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"aims/internal/stream"
)

func testFrames(n, channels int, start uint64) []stream.Frame {
	frames := make([]stream.Frame, n)
	for i := range frames {
		vals := make([]float64, channels)
		for c := range vals {
			vals[c] = float64(start) + float64(i) + float64(c)/10
		}
		frames[i] = stream.Frame{T: float64(start+uint64(i)) / 100, Values: vals}
	}
	return frames
}

// collect replays a directory's WAL into a flat frame list.
func collect(t *testing.T, dir string, watermark uint64, width int) ([]stream.Frame, replayResult) {
	t.Helper()
	var got []stream.Frame
	res, err := replayWAL(dir, watermark, width, func(start uint64, frames []stream.Frame) error {
		got = append(got, frames...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, res
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: FsyncBatch}.withDefaults()
	w, err := openWAL(dir, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var next uint64
	for batch := 0; batch < 7; batch++ {
		frames := testFrames(5+batch, 3, next)
		if err := w.append(next, frames, 3); err != nil {
			t.Fatal(err)
		}
		next += uint64(len(frames))
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	got, res := collect(t, dir, 0, 3)
	if uint64(len(got)) != next || res.processed != next || res.truncated {
		t.Fatalf("replayed %d frames (processed=%d truncated=%v), want %d", len(got), res.processed, res.truncated, next)
	}
	if got[11].Values[1] != testFrames(1, 3, 11)[0].Values[1] {
		t.Fatal("frame content drift")
	}
}

func TestWALSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Dir: dir, Fsync: FsyncOff, SegmentBytes: 2048}.withDefaults()
	w, err := openWAL(dir, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var next uint64
	for batch := 0; batch < 40; batch++ {
		frames := testFrames(8, 2, next)
		if err := w.append(next, frames, 2); err != nil {
			t.Fatal(err)
		}
		next += 8
	}
	seqs, _ := listSegments(dir)
	if len(seqs) < 3 {
		t.Fatalf("expected rotation, got %d segments", len(seqs))
	}
	got, res := collect(t, dir, 0, 2)
	if uint64(len(got)) != next || res.truncated {
		t.Fatalf("replayed %d/%d", len(got), next)
	}

	// A mid-stream watermark trims the covered prefix exactly.
	got, res = collect(t, dir, 100, 2)
	if uint64(len(got)) != next-100 || res.processed != next {
		t.Fatalf("watermark replay got %d frames, processed %d", len(got), res.processed)
	}

	// Truncation drops only segments wholly below the watermark, and the
	// remaining log still replays everything past it.
	if err := w.truncateBelow(next / 2); err != nil {
		t.Fatal(err)
	}
	left, _ := listSegments(dir)
	if len(left) >= len(seqs) || len(left) == 0 {
		t.Fatalf("truncate kept %d of %d segments", len(left), len(seqs))
	}
	got, _ = collect(t, dir, next/2, 2)
	if uint64(len(got)) != next-next/2 {
		t.Fatalf("post-truncate replay got %d, want %d", len(got), next-next/2)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALTornTailTruncatedAtLastValidRecord(t *testing.T) {
	dir := t.TempDir()
	plan := NewFaultPlan()
	cfg := Config{Dir: dir, Fsync: FsyncOff, OpenFile: plan.Open}.withDefaults()
	w, err := openWAL(dir, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.append(uint64(i*4), testFrames(4, 2, uint64(i*4)), 2); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the sixth batch a few bytes into its record.
	plan.TearAt(plan.Written() + 13)
	if err := w.append(20, testFrames(4, 2, 20), 2); !errors.Is(err, ErrInjectedTear) {
		t.Fatalf("torn write returned %v", err)
	}
	w.close()

	got, res := collect(t, dir, 0, 2)
	if len(got) != 20 || !res.truncated || res.processed != 20 {
		t.Fatalf("recovered %d frames (truncated=%v processed=%d), want 20", len(got), res.truncated, res.processed)
	}
	// The replay physically cut the tail: a second replay is clean, and a
	// fresh WAL can continue from the recovered index.
	got, res = collect(t, dir, 0, 2)
	if len(got) != 20 || res.truncated {
		t.Fatalf("second replay: %d frames truncated=%v", len(got), res.truncated)
	}
	plan.Heal()
	w2, err := openWAL(dir, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.append(20, testFrames(4, 2, 20), 2); err != nil {
		t.Fatal(err)
	}
	w2.close()
	got, res = collect(t, dir, 0, 2)
	if len(got) != 24 || res.truncated {
		t.Fatalf("after continue: %d frames truncated=%v", len(got), res.truncated)
	}
}

func TestWALBitFlipDetectedByCRC(t *testing.T) {
	for _, off := range []int64{0, 3, 4, 8, 9, 25} {
		dir := t.TempDir()
		plan := NewFaultPlan()
		cfg := Config{Dir: dir, Fsync: FsyncOff, OpenFile: plan.Open}.withDefaults()
		w, err := openWAL(dir, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.append(0, testFrames(6, 2, 0), 2); err != nil {
			t.Fatal(err)
		}
		// Flip one bit inside the second record (off bytes past its start).
		plan.FlipBit(plan.Written()+off, 0x10)
		if err := w.append(6, testFrames(6, 2, 6), 2); err != nil {
			t.Fatal(err)
		}
		if err := w.append(12, testFrames(6, 2, 12), 2); err != nil {
			t.Fatal(err)
		}
		w.close()
		got, res := collect(t, dir, 0, 2)
		// Everything from the flipped record on is untrusted.
		if len(got) != 6 || !res.truncated {
			t.Fatalf("offset %d: recovered %d frames truncated=%v, want 6", off, len(got), res.truncated)
		}
	}
}

func TestWALShortHeaderAndGarbageFiles(t *testing.T) {
	dir := t.TempDir()
	// A torn segment header (crash during rotation) must not break replay.
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte("AIMSW"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, res := collect(t, dir, 0, 2)
	if len(got) != 0 || !res.truncated {
		t.Fatalf("torn header: %d frames truncated=%v", len(got), res.truncated)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Fatal("headerless segment not removed")
	}
}

func TestWALFsyncPolicies(t *testing.T) {
	appendN := func(cfg Config, n int) *FaultPlan {
		plan := NewFaultPlan()
		cfg.OpenFile = plan.Open
		cfg = cfg.withDefaults()
		w, err := openWAL(cfg.Dir, 0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if err := w.append(uint64(i), testFrames(1, 1, uint64(i)), 1); err != nil {
				t.Fatal(err)
			}
		}
		w.close()
		return plan
	}
	if got := appendN(Config{Dir: t.TempDir(), Fsync: FsyncBatch}, 10).Syncs(); got < 10 {
		t.Fatalf("batch policy synced %d times for 10 appends", got)
	}
	// Off: only the close-time sync.
	if got := appendN(Config{Dir: t.TempDir(), Fsync: FsyncOff}, 10).Syncs(); got > 1 {
		t.Fatalf("off policy synced %d times", got)
	}
	// Interval: far fewer syncs than appends, but at least one.
	plan := appendN(Config{Dir: t.TempDir(), Fsync: FsyncInterval, FsyncInterval: 5 * time.Millisecond}, 10)
	time.Sleep(30 * time.Millisecond)
	if got := plan.Syncs(); got < 1 || got >= 10 {
		t.Fatalf("interval policy synced %d times for 10 appends", got)
	}
}

func TestWALAsyncFsyncErrorSurfacesAndRotates(t *testing.T) {
	dir := t.TempDir()
	plan := NewFaultPlan()
	cfg := Config{Dir: dir, Fsync: FsyncInterval, FsyncInterval: time.Millisecond, OpenFile: plan.Open}.withDefaults()
	w, err := openWAL(dir, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append(0, testFrames(2, 1, 0), 1); err != nil {
		t.Fatal(err)
	}
	plan.FailSync(errors.New("injected fsync failure"))
	deadline := time.Now().Add(time.Second)
	var gotErr error
	for time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		if err := w.append(2, testFrames(1, 1, 2), 1); err != nil {
			gotErr = err
			break
		}
	}
	if gotErr == nil {
		t.Fatal("deferred fsync failure never surfaced on append")
	}
	plan.FailSync(nil)
	// The next append lands on a fresh segment (the old tail is suspect).
	if err := w.append(3, testFrames(1, 1, 3), 1); err != nil {
		t.Fatal(err)
	}
	w.close()
	if seqs, _ := listSegments(dir); len(seqs) < 2 {
		t.Fatalf("expected rotation after fsync failure, got %d segments", len(seqs))
	}
}
