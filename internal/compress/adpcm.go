package compress

// IMA-style ADPCM on quantized signals: each sample is predicted from the
// previous one and the 4-bit-coded prediction error adapts the step size.
// This is the "Adaptive DPCM" quantization technique the paper's follow-up
// acquisition study evaluated against (and combined with) the sampling
// policies.

var imaIndexTable = [16]int{-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}

var imaStepTable = [89]int{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
	19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
	50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
	130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
	337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
	876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
	5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
	15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// adpcmState is the shared encoder/decoder predictor.
type adpcmState struct {
	pred  int // predicted sample, int16 domain
	index int // step-table index
}

func (s *adpcmState) encodeSample(sample int) byte {
	step := imaStepTable[s.index]
	diff := sample - s.pred
	var code byte
	if diff < 0 {
		code = 8
		diff = -diff
	}
	// Successive-approximation of diff/step in 3 bits.
	var delta int
	if diff >= step {
		code |= 4
		diff -= step
		delta += step
	}
	step >>= 1
	if diff >= step {
		code |= 2
		diff -= step
		delta += step
	}
	step >>= 1
	if diff >= step {
		code |= 1
		delta += step
	}
	delta += imaStepTable[s.index] >> 3
	if code&8 != 0 {
		s.pred -= delta
	} else {
		s.pred += delta
	}
	s.pred = clampInt(s.pred, -32768, 32767)
	s.index = clampInt(s.index+imaIndexTable[code], 0, len(imaStepTable)-1)
	return code
}

func (s *adpcmState) decodeSample(code byte) int {
	step := imaStepTable[s.index]
	delta := step >> 3
	if code&4 != 0 {
		delta += step
	}
	if code&2 != 0 {
		delta += step >> 1
	}
	if code&1 != 0 {
		delta += step >> 2
	}
	if code&8 != 0 {
		s.pred -= delta
	} else {
		s.pred += delta
	}
	s.pred = clampInt(s.pred, -32768, 32767)
	s.index = clampInt(s.index+imaIndexTable[code], 0, len(imaStepTable)-1)
	return s.pred
}

// ADPCM couples a float↔int16 scaling with the IMA codec.
type ADPCM struct {
	// Scale maps floats to the int16 domain: int16 = float · Scale.
	Scale float64
}

// NewADPCM picks a scale so the observed signal range uses most of the
// int16 headroom.
func NewADPCM(x []float64) ADPCM {
	var peak float64
	for _, v := range x {
		if a := abs(v); a > peak {
			peak = a
		}
	}
	if peak == 0 {
		peak = 1
	}
	return ADPCM{Scale: 30000 / peak}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Encode compresses x to 4 bits per sample (two samples per byte, odd tail
// padded). The stream head stores the first sample (two bytes, predictor
// seed) and the initial step-table index (one byte) calibrated to the
// signal's typical step so short signals skip the adaptation transient.
func (a ADPCM) Encode(x []float64) []byte {
	if len(x) == 0 {
		return nil
	}
	st := adpcmState{
		pred:  int(clampf(x[0]*a.Scale, -32768, 32767)),
		index: initialIndex(x, a.Scale),
	}
	out := []byte{byte(uint16(st.pred) >> 8), byte(uint16(st.pred)), byte(st.index)}
	var nibblePending bool
	var hi byte
	for _, v := range x[1:] {
		code := st.encodeSample(int(clampf(v*a.Scale, -32768, 32767)))
		if !nibblePending {
			hi = code << 4
			nibblePending = true
		} else {
			out = append(out, hi|code)
			nibblePending = false
		}
	}
	if nibblePending {
		out = append(out, hi)
	}
	return out
}

func clampf(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// initialIndex picks the step-table index whose step best matches the
// signal's mean absolute first difference (in the int16 domain), so the
// codec starts adapted instead of climbing from step 7.
func initialIndex(x []float64, scale float64) int {
	if len(x) < 2 {
		return 0
	}
	var sum float64
	for i := 1; i < len(x); i++ {
		d := (x[i] - x[i-1]) * scale
		if d < 0 {
			d = -d
		}
		sum += d
	}
	target := int(sum / float64(len(x)-1))
	idx := 0
	for idx < len(imaStepTable)-1 && imaStepTable[idx] < target {
		idx++
	}
	return idx
}

// Decode reconstructs n samples from an Encode stream.
func (a ADPCM) Decode(enc []byte, n int) []float64 {
	if n == 0 || len(enc) < 3 {
		return nil
	}
	first := int(int16(uint16(enc[0])<<8 | uint16(enc[1])))
	st := adpcmState{pred: first, index: clampInt(int(enc[2]), 0, len(imaStepTable)-1)}
	out := make([]float64, 0, n)
	out = append(out, float64(first)/a.Scale)
	codes := enc[3:]
	for i := 0; len(out) < n; i++ {
		byteIdx := i / 2
		if byteIdx >= len(codes) {
			break
		}
		var code byte
		if i%2 == 0 {
			code = codes[byteIdx] >> 4
		} else {
			code = codes[byteIdx] & 0x0f
		}
		out = append(out, float64(st.decodeSample(code))/a.Scale)
	}
	return out
}

// EncodedSize returns the ADPCM byte cost of an n-sample signal
// (3 header bytes + one nibble per remaining sample).
func EncodedSize(n int) int {
	if n == 0 {
		return 0
	}
	return 3 + n/2
}
