package compress

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"aims/internal/wavelet"
)

// WaveletCodec stores a sensor trace as its thresholded wavelet transform —
// the storage format AIMS itself proposes (§3.1.1: "storing immersidata as
// wavelets does not require any extra overhead of reverse transformation at
// the query time"). Encoding keeps the smallest coefficient set holding the
// configured energy fraction and serialises (position, float32 value)
// pairs; decoding inverse-transforms back to the (padded) trace.
type WaveletCodec struct {
	Filter wavelet.Filter
	// Energy is the fraction of transform energy to retain (default 0.999).
	Energy float64
}

// NewWaveletCodec returns a codec with the given filter (db3 by default if
// the zero Filter is passed) and energy target.
func NewWaveletCodec(f wavelet.Filter, energy float64) WaveletCodec {
	if f.Len() == 0 {
		f = wavelet.D6
	}
	if energy <= 0 || energy > 1 {
		energy = 0.999
	}
	return WaveletCodec{Filter: f, Energy: energy}
}

// Encode compresses x. The stream layout is:
// uvarint(origLen) | uvarint(paddedLen) | uvarint(levels) | uvarint(k) |
// k × (uvarint(position) | float32 value).
func (c WaveletCodec) Encode(x []float64) []byte {
	origLen := len(x)
	padded := 1
	for padded < origLen {
		padded *= 2
	}
	if padded == 0 {
		padded = 1
	}
	sig := make([]float64, padded)
	copy(sig, x)
	w, levels := wavelet.Transform(sig, c.Filter, -1)

	// Keep the smallest prefix (by magnitude) reaching the energy target.
	type cv struct {
		pos int
		v   float64
	}
	total := 0.0
	coeffs := make([]cv, len(w))
	for i, v := range w {
		coeffs[i] = cv{i, v}
		total += v * v
	}
	sort.Slice(coeffs, func(i, j int) bool {
		ai, aj := math.Abs(coeffs[i].v), math.Abs(coeffs[j].v)
		if ai != aj {
			return ai > aj
		}
		return coeffs[i].pos < coeffs[j].pos
	})
	target := c.Energy * total
	var kept float64
	k := 0
	for k < len(coeffs) && kept < target {
		kept += coeffs[k].v * coeffs[k].v
		k++
	}

	out := binary.AppendUvarint(nil, uint64(origLen))
	out = binary.AppendUvarint(out, uint64(padded))
	out = binary.AppendUvarint(out, uint64(levels))
	out = binary.AppendUvarint(out, uint64(k))
	for _, e := range coeffs[:k] {
		out = binary.AppendUvarint(out, uint64(e.pos))
		out = binary.LittleEndian.AppendUint32(out, math.Float32bits(float32(e.v)))
	}
	return out
}

// Decode reconstructs the trace (original length) from an Encode stream.
func (c WaveletCodec) Decode(enc []byte) ([]float64, error) {
	read := func() (uint64, error) {
		v, n := binary.Uvarint(enc)
		if n <= 0 {
			return 0, fmt.Errorf("compress: truncated wavelet stream")
		}
		enc = enc[n:]
		return v, nil
	}
	origLen, err := read()
	if err != nil {
		return nil, err
	}
	padded, err := read()
	if err != nil {
		return nil, err
	}
	levels, err := read()
	if err != nil {
		return nil, err
	}
	k, err := read()
	if err != nil {
		return nil, err
	}
	if padded == 0 || padded&(padded-1) != 0 || origLen > padded || padded > 1<<28 {
		return nil, fmt.Errorf("compress: implausible wavelet stream header")
	}
	if k > padded {
		return nil, fmt.Errorf("compress: coefficient count %d exceeds signal %d", k, padded)
	}
	w := make([]float64, padded)
	for i := uint64(0); i < k; i++ {
		pos, err := read()
		if err != nil {
			return nil, err
		}
		if pos >= padded {
			return nil, fmt.Errorf("compress: coefficient position %d out of range", pos)
		}
		if len(enc) < 4 {
			return nil, fmt.Errorf("compress: truncated coefficient value")
		}
		w[pos] = float64(math.Float32frombits(binary.LittleEndian.Uint32(enc)))
		enc = enc[4:]
	}
	sig := wavelet.Inverse(w, c.Filter, int(levels))
	return sig[:origLen], nil
}
