package compress

import (
	"container/heap"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Huffman implements canonical Huffman coding of byte streams. The encoded
// form is self-describing: a 256-entry code-length table precedes the bit
// stream, so Decode needs no side channel — the shape of a block
// compressor, which is what the paper's sampling study compared against.

type huffNode struct {
	freq        int
	sym         int // -1 for internal
	left, right *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int            { return len(h) }
func (h huffHeap) Less(i, j int) bool  { return h[i].freq < h[j].freq }
func (h huffHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x interface{}) { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// codeLengths computes per-symbol Huffman code lengths from frequencies.
func codeLengths(freq [256]int) [256]int {
	var lengths [256]int
	h := &huffHeap{}
	for s, f := range freq {
		if f > 0 {
			heap.Push(h, &huffNode{freq: f, sym: s})
		}
	}
	switch h.Len() {
	case 0:
		return lengths
	case 1:
		lengths[(*h)[0].sym] = 1
		return lengths
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(*huffNode)
		b := heap.Pop(h).(*huffNode)
		heap.Push(h, &huffNode{freq: a.freq + b.freq, sym: -1, left: a, right: b})
	}
	root := heap.Pop(h).(*huffNode)
	var walk func(n *huffNode, depth int)
	walk = func(n *huffNode, depth int) {
		if n.sym >= 0 {
			lengths[n.sym] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// canonicalCodes assigns canonical codes given code lengths.
func canonicalCodes(lengths [256]int) [256]uint32 {
	type sl struct{ sym, l int }
	var syms []sl
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, sl{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].sym < syms[j].sym
	})
	var codes [256]uint32
	code := uint32(0)
	prevLen := 0
	for _, e := range syms {
		code <<= uint(e.l - prevLen)
		codes[e.sym] = code
		code++
		prevLen = e.l
	}
	return codes
}

// HuffmanEncode compresses data. The output layout is:
// uvarint(len(data)) | 256 bytes of code lengths | packed bit stream.
func HuffmanEncode(data []byte) []byte {
	var freq [256]int
	for _, b := range data {
		freq[b]++
	}
	lengths := codeLengths(freq)
	codes := canonicalCodes(lengths)

	out := binary.AppendUvarint(nil, uint64(len(data)))
	for _, l := range lengths {
		out = append(out, byte(l))
	}
	var acc uint64
	var nbits uint
	for _, b := range data {
		l := uint(lengths[b])
		acc = acc<<l | uint64(codes[b])
		nbits += l
		for nbits >= 8 {
			nbits -= 8
			out = append(out, byte(acc>>nbits))
		}
	}
	if nbits > 0 {
		out = append(out, byte(acc<<(8-nbits)))
	}
	return out
}

// HuffmanDecode inverts HuffmanEncode.
func HuffmanDecode(enc []byte) ([]byte, error) {
	n, consumed := binary.Uvarint(enc)
	if consumed <= 0 {
		return nil, errors.New("compress: truncated huffman header")
	}
	enc = enc[consumed:]
	if len(enc) < 256 {
		return nil, errors.New("compress: truncated huffman length table")
	}
	var lengths [256]int
	for s := 0; s < 256; s++ {
		lengths[s] = int(enc[s])
		if lengths[s] > 57 {
			return nil, fmt.Errorf("compress: invalid code length %d", lengths[s])
		}
	}
	enc = enc[256:]
	codes := canonicalCodes(lengths)

	// Build a decode map keyed by (length, code).
	type key struct {
		l int
		c uint32
	}
	decode := make(map[key]byte)
	maxLen := 0
	for s := 0; s < 256; s++ {
		if lengths[s] > 0 {
			decode[key{lengths[s], codes[s]}] = byte(s)
			if lengths[s] > maxLen {
				maxLen = lengths[s]
			}
		}
	}

	out := make([]byte, 0, n)
	var acc uint32
	var accLen int
	pos := 0
	for uint64(len(out)) < n {
		// Extend the accumulator until a code matches.
		matched := false
		for l := 1; l <= maxLen; l++ {
			for accLen < l {
				if pos >= len(enc) {
					return nil, errors.New("compress: truncated huffman bit stream")
				}
				acc = acc<<8 | uint32(enc[pos])
				accLen += 8
				pos++
			}
			c := acc >> uint(accLen-l)
			if sym, ok := decode[key{l, c}]; ok {
				out = append(out, sym)
				acc &= (1 << uint(accLen-l)) - 1
				accLen -= l
				matched = true
				break
			}
		}
		if !matched {
			return nil, errors.New("compress: invalid huffman code")
		}
	}
	return out, nil
}

// HuffmanSize returns the compressed size in bytes without keeping the
// output — the measurement the bandwidth experiments need.
func HuffmanSize(data []byte) int { return len(HuffmanEncode(data)) }
