package compress

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizerRoundTrip(t *testing.T) {
	q := NewQuantizer(-10, 10, 8)
	if q.Levels() != 256 {
		t.Fatalf("Levels = %d", q.Levels())
	}
	for _, v := range []float64{-10, -3.7, 0, 5.5, 10} {
		back := q.Dequantize(q.Quantize(v))
		if math.Abs(back-v) > q.Step() {
			t.Errorf("round trip %v → %v exceeds one step %v", v, back, q.Step())
		}
	}
	// Clamping.
	if q.Quantize(-100) != 0 || q.Quantize(100) != 255 {
		t.Error("out-of-range values must clamp")
	}
}

func TestQuantizerForDegenerate(t *testing.T) {
	q := QuantizerFor(nil, 8)
	if q.Max <= q.Min {
		t.Fatal("degenerate quantizer range")
	}
	q2 := QuantizerFor([]float64{3, 3, 3}, 4)
	if q2.Max <= q2.Min {
		t.Fatal("constant-signal quantizer range")
	}
	_ = q2.Quantize(3)
}

func TestQuantizerPanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewQuantizer(0, 1, 20)
}

func TestQuantizeAllRoundTrip(t *testing.T) {
	x := []float64{0.1, 0.5, 0.9}
	q := NewQuantizer(0, 1, 12)
	back := q.DequantizeAll(q.QuantizeAll(x))
	for i := range x {
		if math.Abs(back[i]-x[i]) > q.Step() {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestHuffmanRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		enc := HuffmanEncode(data)
		dec, err := HuffmanDecode(enc)
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHuffmanCompressesSkewedData(t *testing.T) {
	data := make([]byte, 4096)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		if rng.Float64() < 0.9 {
			data[i] = 0
		} else {
			data[i] = byte(rng.Intn(8))
		}
	}
	if size := HuffmanSize(data); size >= len(data) {
		t.Fatalf("skewed data did not compress: %d ≥ %d", size, len(data))
	}
}

func TestHuffmanEdgeCases(t *testing.T) {
	for _, data := range [][]byte{nil, {}, {7}, {7, 7, 7, 7}, {0, 255}} {
		enc := HuffmanEncode(data)
		dec, err := HuffmanDecode(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", data, err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("round trip %v → %v", data, dec)
		}
	}
}

func TestHuffmanDecodeRejectsGarbage(t *testing.T) {
	if _, err := HuffmanDecode([]byte{5}); err == nil {
		t.Fatal("expected error on truncated header")
	}
	// Valid header claiming data, but empty bit stream.
	enc := HuffmanEncode([]byte{1, 2, 3})
	if _, err := HuffmanDecode(enc[:len(enc)-1]); err == nil {
		t.Fatal("expected error on truncated bit stream")
	}
}

func TestADPCMTracksSmoothSignal(t *testing.T) {
	n := 2000
	x := make([]float64, n)
	for i := range x {
		x[i] = 8 * math.Sin(2*math.Pi*2*float64(i)/100)
	}
	codec := NewADPCM(x)
	enc := codec.Encode(x)
	dec := codec.Decode(enc, n)
	if len(dec) != n {
		t.Fatalf("decoded %d samples", len(dec))
	}
	var mse float64
	for i := range x {
		d := dec[i] - x[i]
		mse += d * d
	}
	mse /= float64(n)
	// Signal power is 32; ADPCM should track well under 1 % of it.
	if mse > 0.32 {
		t.Fatalf("ADPCM MSE %v too high", mse)
	}
	// 4 bits per sample: enc must be ≈ n/2 bytes.
	if len(enc) > n/2+3 {
		t.Fatalf("ADPCM size %d, want ≈ %d", len(enc), n/2)
	}
}

func TestADPCMEdgeCases(t *testing.T) {
	codec := ADPCM{Scale: 100}
	if got := codec.Encode(nil); got != nil {
		t.Fatal("empty encode")
	}
	if got := codec.Decode(nil, 5); got != nil {
		t.Fatal("empty decode")
	}
	one := codec.Encode([]float64{1.5})
	dec := codec.Decode(one, 1)
	if len(dec) != 1 || math.Abs(dec[0]-1.5) > 0.02 {
		t.Fatalf("single sample: %v", dec)
	}
}

func TestADPCMScaleSelection(t *testing.T) {
	c := NewADPCM([]float64{-2, 0, 3})
	if c.Scale != 10000 {
		t.Fatalf("Scale = %v, want 30000/3", c.Scale)
	}
	cz := NewADPCM([]float64{0, 0})
	if cz.Scale != 30000 {
		t.Fatalf("zero-signal Scale = %v", cz.Scale)
	}
}

func TestEncodedSize(t *testing.T) {
	if EncodedSize(0) != 0 {
		t.Fatal("size(0)")
	}
	if EncodedSize(1) != 3 {
		t.Fatalf("size(1) = %d", EncodedSize(1))
	}
	if EncodedSize(5) != 3+2 {
		t.Fatalf("size(5) = %d", EncodedSize(5))
	}
	// EncodedSize must match Encode's actual output length.
	for _, n := range []int{1, 2, 5, 100, 101} {
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i)
		}
		if got := len(NewADPCM(x).Encode(x)); got != EncodedSize(n) {
			t.Fatalf("n=%d: Encode length %d != EncodedSize %d", n, got, EncodedSize(n))
		}
	}
}

func TestADPCMRandomWalkProperty(t *testing.T) {
	// Any smooth-ish signal must round-trip with error bounded by a few
	// adaptation steps.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(500)
		x := make([]float64, n)
		v := 0.0
		for i := range x {
			v += rng.NormFloat64() * 0.05
			x[i] = v
		}
		codec := NewADPCM(x)
		dec := codec.Decode(codec.Encode(x), n)
		if len(dec) != n {
			return false
		}
		var mse, power float64
		for i := range x {
			d := dec[i] - x[i]
			mse += d * d
			power += x[i] * x[i]
		}
		if power == 0 {
			return true
		}
		return mse/(power+1e-9) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
