// Package compress implements the conventional compression baselines the
// paper compares its sampling policies against (§3.1): block-based entropy
// coding ("e.g., Unix zip software (based on Hoffman coding)") via a
// canonical Huffman coder, uniform quantization, and an IMA-style ADPCM
// codec ("Adaptive DPCM") — plus the composition of sampling with ADPCM the
// follow-up study evaluated.
package compress

import (
	"fmt"
	"math"
)

// Quantizer maps floats in [Min, Max] onto unsigned integers of Bits bits.
type Quantizer struct {
	Min, Max float64
	Bits     int
}

// NewQuantizer builds a quantizer for the given range and bit width
// (1..16).
func NewQuantizer(min, max float64, bits int) Quantizer {
	if bits < 1 || bits > 16 {
		panic(fmt.Sprintf("compress: quantizer bits %d out of [1,16]", bits))
	}
	if max <= min {
		max = min + 1
	}
	return Quantizer{Min: min, Max: max, Bits: bits}
}

// QuantizerFor derives a quantizer spanning the observed range of x.
func QuantizerFor(x []float64, bits int) Quantizer {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range x {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if len(x) == 0 {
		lo, hi = 0, 1
	}
	return NewQuantizer(lo, hi, bits)
}

// Levels returns the number of quantization levels.
func (q Quantizer) Levels() int { return 1 << uint(q.Bits) }

// Quantize maps v to its level index, clamping out-of-range values.
func (q Quantizer) Quantize(v float64) int {
	n := q.Levels()
	f := (v - q.Min) / (q.Max - q.Min)
	i := int(math.Round(f * float64(n-1)))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Dequantize maps a level index back to the centre of its cell.
func (q Quantizer) Dequantize(i int) float64 {
	n := q.Levels()
	return q.Min + float64(i)/float64(n-1)*(q.Max-q.Min)
}

// Step returns the quantization step size.
func (q Quantizer) Step() float64 { return (q.Max - q.Min) / float64(q.Levels()-1) }

// QuantizeAll quantizes a signal to level indices.
func (q Quantizer) QuantizeAll(x []float64) []int {
	out := make([]int, len(x))
	for i, v := range x {
		out[i] = q.Quantize(v)
	}
	return out
}

// DequantizeAll reconstructs a signal from level indices.
func (q Quantizer) DequantizeAll(levels []int) []float64 {
	out := make([]float64, len(levels))
	for i, l := range levels {
		out[i] = q.Dequantize(l)
	}
	return out
}
