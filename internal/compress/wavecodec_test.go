package compress

import (
	"math"
	"math/rand"
	"testing"

	"aims/internal/wavelet"
)

func smoothTrace(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		t := float64(i) / 100
		x[i] = 12*math.Sin(2*math.Pi*1.5*t) + 5*math.Sin(2*math.Pi*4*t+1)
	}
	return x
}

func TestWaveletCodecRoundTripAccuracy(t *testing.T) {
	x := smoothTrace(3000)
	c := NewWaveletCodec(wavelet.D6, 0.9999)
	enc := c.Encode(x)
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(x) {
		t.Fatalf("decoded %d samples", len(dec))
	}
	var mse, power float64
	for i := range x {
		d := dec[i] - x[i]
		mse += d * d
		power += x[i] * x[i]
	}
	if mse/power > 1e-3 {
		t.Fatalf("relative error %v", mse/power)
	}
	// Smooth traces must compress well below raw float64 size (the padding
	// to 4096 and the 99.99 % energy target keep some boundary detail).
	if len(enc) > len(x)*8/3 {
		t.Fatalf("encoded %d bytes for %d raw", len(enc), len(x)*8)
	}
}

func TestWaveletCodecEnergyKnob(t *testing.T) {
	x := smoothTrace(2048)
	loose := NewWaveletCodec(wavelet.D6, 0.9).Encode(x)
	tight := NewWaveletCodec(wavelet.D6, 0.99999).Encode(x)
	if len(loose) >= len(tight) {
		t.Fatalf("energy knob inverted: %d vs %d", len(loose), len(tight))
	}
}

func TestWaveletCodecDefaults(t *testing.T) {
	c := NewWaveletCodec(wavelet.Filter{}, -1)
	if c.Filter.Name != "db3" || c.Energy != 0.999 {
		t.Fatalf("defaults: %+v", c)
	}
}

func TestWaveletCodecNonPowerOfTwoAndEdges(t *testing.T) {
	for _, n := range []int{1, 2, 100, 1000} {
		x := smoothTrace(n)
		c := NewWaveletCodec(wavelet.Haar, 0.999)
		dec, err := c.Decode(c.Encode(x))
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(dec) != n {
			t.Fatalf("n=%d: decoded %d", n, len(dec))
		}
	}
}

func TestWaveletCodecRejectsGarbage(t *testing.T) {
	c := NewWaveletCodec(wavelet.D6, 0.999)
	for _, garbage := range [][]byte{{}, {1}, {200, 200, 200}, c.Encode(smoothTrace(64))[:5]} {
		if _, err := c.Decode(garbage); err == nil {
			t.Errorf("garbage %v accepted", garbage)
		}
	}
}

func TestWaveletCodecNoisySignalDegradesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := smoothTrace(2048)
	for i := range x {
		x[i] += 0.5 * rng.NormFloat64()
	}
	c := NewWaveletCodec(wavelet.D6, 0.99)
	dec, err := c.Decode(c.Encode(x))
	if err != nil {
		t.Fatal(err)
	}
	var mse, power float64
	for i := range x {
		d := dec[i] - x[i]
		mse += d * d
		power += x[i] * x[i]
	}
	// 99 % energy ⇒ ≤ ~1 % squared error by construction.
	if mse/power > 0.02 {
		t.Fatalf("relative error %v", mse/power)
	}
}
