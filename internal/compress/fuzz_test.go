package compress

import (
	"bytes"
	"testing"
)

func FuzzHuffmanRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 1, 1, 1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xff}, 300))
	f.Fuzz(func(t *testing.T, data []byte) {
		enc := HuffmanEncode(data)
		dec, err := HuffmanDecode(enc)
		if err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("round trip mismatch: %d vs %d bytes", len(dec), len(data))
		}
	})
}

func FuzzHuffmanDecodeNeverPanics(f *testing.F) {
	f.Add([]byte{5, 1, 2, 3})
	f.Add(HuffmanEncode([]byte("seed")))
	f.Fuzz(func(t *testing.T, garbage []byte) {
		// Arbitrary input must produce an error or a result — never a
		// panic or an unbounded allocation.
		dec, err := HuffmanDecode(garbage)
		if err == nil && len(dec) > 1<<24 {
			t.Fatalf("suspicious decode of %d bytes from %d-byte input", len(dec), len(garbage))
		}
	})
}
