package core

import (
	"bytes"
	"math"
	"testing"

	"aims/internal/stream"
)

func liveFrames(n int, channels int) []stream.Frame {
	frames := make([]stream.Frame, n)
	for i := range frames {
		vals := make([]float64, channels)
		for c := range vals {
			vals[c] = math.Sin(float64(i)/20+float64(c)) * 3
		}
		frames[i] = stream.Frame{T: float64(i) / 100, Values: vals}
	}
	return frames
}

// TestRestoreLiveStoreRoundTrip seals a live store, serialises it, reads
// it back, inverse-transforms it into a new live store, and checks the
// restored session answers exact queries identically — then keeps
// ingesting and sealing incrementally.
func TestRestoreLiveStoreRoundTrip(t *testing.T) {
	mins := []float64{-4, -4, -4}
	maxs := []float64{4, 4, 4}
	cfg := LiveStoreConfig{Rate: 100, TimeBuckets: 32, ValueBins: 32, HorizonTicks: 3200}
	ls, err := NewLiveStore(mins, maxs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ls.AppendFrames(liveFrames(1200, 3)); err != nil {
		t.Fatal(err)
	}
	st, err := ls.Seal()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreLiveStore(back, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if restored.Frames() != ls.Frames() {
		t.Fatalf("frames: restored %d, want %d", restored.Frames(), ls.Frames())
	}
	for ch := 0; ch < 3; ch++ {
		n1, err1 := ls.CountSamples(ch, 0, 12)
		n2, err2 := restored.CountSamples(ch, 0, 12)
		if err1 != nil || err2 != nil || n1 != n2 {
			t.Fatalf("ch %d count: %v/%v (%v %v)", ch, n1, n2, err1, err2)
		}
		a1, ok1, _ := ls.AverageValue(ch, 0, 12)
		a2, ok2, _ := restored.AverageValue(ch, 0, 12)
		if ok1 != ok2 || math.Abs(a1-a2) > 1e-9 {
			t.Fatalf("ch %d average: %v/%v", ch, a1, a2)
		}
	}

	// The restore seeds the seal cache, so continued ingest seals
	// incrementally and the sealed engine agrees with the exact cube.
	if _, err := restored.AppendFrames(liveFrames(100, 3)); err != nil {
		t.Fatal(err)
	}
	est, bound, err := restored.ApproximateCount(1, 0, 13, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := restored.CountSamples(1, 0, 13)
	if math.Abs(est-exact) > bound+1e-6 {
		t.Fatalf("sealed estimate %v±%v vs exact %v", est, bound, exact)
	}
}

// TestRestoreLiveStoreRejectsDamage corrupts a sealed store's coefficients
// in ways the header checks cannot see; the integrality check must refuse
// to resurrect the session.
func TestRestoreLiveStoreRejectsDamage(t *testing.T) {
	cfg := LiveStoreConfig{Rate: 100, TimeBuckets: 16, ValueBins: 16, HorizonTicks: 1600}
	ls, err := NewLiveStore([]float64{-4}, []float64{4}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ls.AppendFrames(liveFrames(500, 1)); err != nil {
		t.Fatal(err)
	}
	st, err := ls.Seal()
	if err != nil {
		t.Fatal(err)
	}
	st.Engine.Coeffs[7] += 0.37
	if _, err := RestoreLiveStore(st, cfg); err == nil {
		t.Fatal("non-integral cube accepted")
	}
}

// TestRestoreReplayDedupInvariant models crash recovery where the journal
// tail overlaps the snapshot: a store is snapshotted at frame N, and the
// surviving log's trailing record spans frames already inside the
// snapshot. The recovery discipline — drop everything below the restored
// store's Frames() watermark, trim the straddling record to its fresh
// suffix — must reproduce the uninterrupted store exactly, while naively
// re-applying the duplicate record visibly diverges (which is what makes
// the watermark check load-bearing).
func TestRestoreReplayDedupInvariant(t *testing.T) {
	mins := []float64{-4, -4}
	maxs := []float64{4, 4}
	cfg := LiveStoreConfig{Rate: 100, TimeBuckets: 32, ValueBins: 32, HorizonTicks: 3200}
	all := liveFrames(900, 2)

	// The fault-free reference: every frame applied exactly once.
	ref, err := NewLiveStore(mins, maxs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.AppendFrames(all); err != nil {
		t.Fatal(err)
	}

	// Snapshot at frame 600, serialised and read back like a real recovery.
	snap, err := NewLiveStore(mins, maxs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.AppendFrames(all[:600]); err != nil {
		t.Fatal(err)
	}
	st, err := snap.Seal()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreLiveStore(back, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Frames() != 600 {
		t.Fatalf("restored watermark = %d, want 600", restored.Frames())
	}

	// The surviving log: [400,700) — trailing record duplicating 200
	// already-applied frames — then [700,900). Apply with the dedup rule.
	for _, rec := range [][2]int{{400, 700}, {700, 900}} {
		start, end := rec[0], rec[1]
		if end <= restored.Frames() {
			continue // wholly below the watermark: already applied
		}
		if below := restored.Frames() - start; below > 0 {
			start += below // trim the covered prefix
		}
		if _, err := restored.AppendFrames(all[start:end]); err != nil {
			t.Fatal(err)
		}
	}

	if restored.Frames() != ref.Frames() {
		t.Fatalf("frames after dedup replay: %d, want %d", restored.Frames(), ref.Frames())
	}
	for ch := 0; ch < 2; ch++ {
		n1, _ := ref.CountSamples(ch, 0, 12)
		n2, _ := restored.CountSamples(ch, 0, 12)
		if n1 != n2 {
			t.Fatalf("ch %d count %v vs %v", ch, n1, n2)
		}
		a1, ok1, _ := ref.AverageValue(ch, 0, 12)
		a2, ok2, _ := restored.AverageValue(ch, 0, 12)
		if ok1 != ok2 || math.Abs(a1-a2) > 1e-9 {
			t.Fatalf("ch %d average %v vs %v", ch, a1, a2)
		}
	}

	// Sanity that the invariant is doing real work: re-applying the
	// duplicate span verbatim inflates the count — exactly the double
	// apply the watermark discipline prevents.
	naive, err := RestoreLiveStore(back, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := naive.AppendFrames(all[400:700]); err != nil {
		t.Fatal(err)
	}
	if _, err := naive.AppendFrames(all[700:900]); err != nil {
		t.Fatal(err)
	}
	if naive.Frames() == ref.Frames() {
		t.Fatal("naive double apply went unnoticed; the dedup test is vacuous")
	}
}
