package core

import (
	"math"
	"testing"
	"time"
)

type sealRecord struct {
	incremental bool
	delta       int
}

// TestSealFallbackAfterReplayError forces the incremental seal's delta
// replay to fail (a poisoned log entry pointing outside the cube) and
// requires the next seal to recover by rebuilding from scratch — reported
// to the SealObserver as a non-incremental seal — with query answers
// identical to a store that never took the broken path.
func TestSealFallbackAfterReplayError(t *testing.T) {
	var seals []sealRecord
	cfg := LiveStoreConfig{
		Rate: 100, TimeBuckets: 32, ValueBins: 32, HorizonTicks: 3200,
		SealObserver: func(d time.Duration, incremental bool, deltaEntries int) {
			seals = append(seals, sealRecord{incremental, deltaEntries})
		},
	}
	mins := []float64{-10, -10}
	maxs := []float64{10, 10}
	ls, err := NewLiveStore(mins, maxs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	frame := func(i int) []float64 {
		return []float64{8 * math.Sin(float64(i)*0.11), 8 * math.Cos(float64(i)*0.07)}
	}
	for i := 0; i < 400; i++ {
		if err := ls.AppendFrame(i, frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ls.Seal(); err != nil {
		t.Fatal(err)
	}
	if len(seals) != 1 || seals[0].incremental {
		t.Fatalf("first seal = %+v, want one full rebuild", seals)
	}

	// More appends populate the delta log; poison it with a flat index
	// outside the cube so the engine's batched sparse append must reject
	// the replay.
	for i := 400; i < 500; i++ {
		if err := ls.AppendFrame(i, frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	ls.mu.Lock()
	if !ls.track || len(ls.delta) == 0 {
		ls.mu.Unlock()
		t.Fatal("delta log not tracking after first seal")
	}
	ls.delta = append(ls.delta, uint32(len(ls.cube))+12345)
	ls.mu.Unlock()
	if _, err := ls.Seal(); err == nil {
		t.Fatal("seal with a poisoned delta log succeeded")
	}
	if len(seals) != 1 {
		t.Fatalf("failed seal reported to observer: %+v", seals)
	}

	// The failed replay left the cached engine in an unknown state; the
	// next seal must not trust it.
	st, err := ls.Seal()
	if err != nil {
		t.Fatalf("seal after replay failure: %v", err)
	}
	if len(seals) != 2 || seals[1].incremental {
		t.Fatalf("recovery seal = %+v, want a full rebuild", seals)
	}

	// Answers must match a store that never saw the poisoned path (built
	// without the observer so it doesn't pollute the seal record).
	cleanCfg := cfg
	cleanCfg.SealObserver = nil
	clean, err := NewLiveStore(mins, maxs, cleanCfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := clean.AppendFrame(i, frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	cleanSt, err := clean.Seal()
	if err != nil {
		t.Fatal(err)
	}
	for ch := 0; ch < 2; ch++ {
		got, gotBound, err := st.ApproximateCount(ch, 0, 5, 16)
		if err != nil {
			t.Fatal(err)
		}
		want, wantBound, err := cleanSt.ApproximateCount(ch, 0, 5, 16)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 || math.Abs(gotBound-wantBound) > 1e-9 {
			t.Fatalf("ch %d: rebuilt store answers %v±%v, clean %v±%v", ch, got, gotBound, want, wantBound)
		}
	}

	// And the incremental path works again after the rebuild.
	for i := 500; i < 520; i++ {
		if err := ls.AppendFrame(i, frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ls.Seal(); err != nil {
		t.Fatal(err)
	}
	if len(seals) != 3 || !seals[2].incremental {
		t.Fatalf("post-recovery seal = %+v, want incremental", seals)
	}
}
