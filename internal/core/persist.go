package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"aims/internal/compress"
	"aims/internal/propolyne"
)

// Store persistence: the durable form of a session is its transformed cube
// plus the quantiser metadata needed to decode value-space answers —
// exactly what the paper's prototype kept as BLOBs in Teradata.

var storeMagic = [8]byte{'A', 'I', 'M', 'S', 'S', 'T', 'O', '1'}

// WriteTo serialises the store (metadata header + engine blob).
func (st *Store) WriteTo(w io.Writer) (int64, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	for _, v := range []interface{}{
		storeMagic,
		uint32(st.Channels),
		uint32(st.TimeBuckets),
		uint32(st.ValueBins),
		uint32(st.TicksPerBucket),
		math.Float64bits(st.Rate),
	} {
		if err := write(v); err != nil {
			return n, err
		}
	}
	for _, q := range st.quant {
		for _, v := range []interface{}{
			math.Float64bits(q.Min), math.Float64bits(q.Max), uint32(q.Bits),
		} {
			if err := write(v); err != nil {
				return n, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	en, err := st.Engine.WriteTo(w)
	return n + en, err
}

// ReadStore deserialises a store written by WriteTo.
func ReadStore(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("core: read magic: %w", err)
	}
	if magic != storeMagic {
		return nil, fmt.Errorf("core: bad store magic %q", magic[:])
	}
	var channels, timeBuckets, valueBins, ticksPerBucket uint32
	var rateBits uint64
	for _, p := range []interface{}{&channels, &timeBuckets, &valueBins, &ticksPerBucket, &rateBits} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if channels == 0 || channels > 4096 {
		return nil, fmt.Errorf("core: implausible channel count %d", channels)
	}
	// Every field below sizes an allocation or a divisor somewhere in the
	// query path, so a corrupt header must be rejected here, not later.
	for _, d := range []struct {
		name string
		v    uint32
		max  uint32
	}{
		{"time buckets", timeBuckets, 1 << 24},
		{"value bins", valueBins, 1 << 16},
	} {
		if d.v == 0 || d.v > d.max || d.v&(d.v-1) != 0 {
			return nil, fmt.Errorf("core: implausible %s %d", d.name, d.v)
		}
	}
	if ticksPerBucket == 0 || ticksPerBucket > 1<<30 {
		return nil, fmt.Errorf("core: implausible ticks per bucket %d", ticksPerBucket)
	}
	rate := math.Float64frombits(rateBits)
	if !(rate > 0) || math.IsInf(rate, 0) || rate > 1e9 {
		return nil, fmt.Errorf("core: implausible rate %v", rate)
	}
	st := &Store{
		Channels:       int(channels),
		TimeBuckets:    int(timeBuckets),
		ValueBins:      int(valueBins),
		TicksPerBucket: int(ticksPerBucket),
		Rate:           rate,
		quant:          make([]compress.Quantizer, channels),
	}
	for c := range st.quant {
		var minBits, maxBits uint64
		var bits uint32
		for _, p := range []interface{}{&minBits, &maxBits, &bits} {
			if err := binary.Read(br, binary.LittleEndian, p); err != nil {
				return nil, err
			}
		}
		if bits < 1 || bits > 16 {
			return nil, fmt.Errorf("core: implausible quantiser bits %d", bits)
		}
		min := math.Float64frombits(minBits)
		max := math.Float64frombits(maxBits)
		if math.IsNaN(min) || math.IsNaN(max) || math.IsInf(min, 0) || math.IsInf(max, 0) || max < min {
			return nil, fmt.Errorf("core: implausible quantiser range [%v, %v]", min, max)
		}
		st.quant[c] = compress.Quantizer{
			Min:  min,
			Max:  max,
			Bits: int(bits),
		}
	}
	eng, err := propolyne.ReadEngine(br)
	if err != nil {
		return nil, err
	}
	// The engine's cube must be the header's cube; a mismatch means the two
	// sections came from different stores (or one was tampered with).
	want := []int{nextPow2(st.Channels), st.TimeBuckets, st.ValueBins}
	if len(eng.Dims) != len(want) {
		return nil, fmt.Errorf("core: engine has %d dims, want %d", len(eng.Dims), len(want))
	}
	for i, n := range want {
		if eng.Dims[i] != n {
			return nil, fmt.Errorf("core: engine dims %v do not match store shape %v", []int(eng.Dims), want)
		}
	}
	st.Engine = eng
	return st, nil
}

// Save writes the store to a file.
func (st *Store) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := st.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadStore reads a store saved with Save.
func LoadStore(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadStore(f)
}
