package core

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
)

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s := New(Config{TimeBuckets: 64, ValueBins: 64})
	st, err := s.BuildStore(syntheticFrames(1500))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "session.aims")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}

	if back.Channels != st.Channels || back.TimeBuckets != st.TimeBuckets ||
		back.ValueBins != st.ValueBins || back.TicksPerBucket != st.TicksPerBucket ||
		back.Rate != st.Rate {
		t.Fatalf("metadata drift: %+v vs %+v", back, st)
	}

	// Every query type answers identically.
	dur := 15.0
	n1, _ := st.CountSamples(2, 1, dur)
	n2, err := back.CountSamples(2, 1, dur)
	if err != nil || math.Abs(n1-n2) > 1e-9 {
		t.Fatalf("count drift: %v vs %v (%v)", n1, n2, err)
	}
	a1, _, _ := st.AverageValue(1, 0, dur)
	a2, ok, err := back.AverageValue(1, 0, dur)
	if err != nil || !ok || math.Abs(a1-a2) > 1e-9 {
		t.Fatalf("average drift: %v vs %v", a1, a2)
	}
	v1, _, _ := st.VarianceValue(3, 0, dur)
	v2, _, err := back.VarianceValue(3, 0, dur)
	if err != nil || math.Abs(v1-v2) > 1e-9 {
		t.Fatalf("variance drift: %v vs %v", v1, v2)
	}
	h1, _, _ := st.ValueHistogram(1, 0, dur, 8)
	h2, _, err := back.ValueHistogram(1, 0, dur, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h1 {
		if math.Abs(h1[i]-h2[i]) > 1e-9 {
			t.Fatalf("histogram drift at %d", i)
		}
	}
	// The restored store keeps ingesting.
	if err := back.AppendFrame(1501, []float64{5, 0.5, 0, 0}); err != nil {
		t.Fatal(err)
	}
}

func TestReadStoreRejectsCorruption(t *testing.T) {
	s := New(Config{TimeBuckets: 32, ValueBins: 32})
	st, err := s.BuildStore(syntheticFrames(200))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for name, data := range map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("WRONGMAG"), good[8:]...),
		"truncated": good[:len(good)/2],
	} {
		if _, err := ReadStore(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadStoreMissingFile(t *testing.T) {
	if _, err := LoadStore(filepath.Join(t.TempDir(), "nope.aims")); err == nil {
		t.Fatal("missing file accepted")
	}
}
