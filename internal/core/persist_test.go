package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"path/filepath"
	"testing"
)

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s := New(Config{TimeBuckets: 64, ValueBins: 64})
	st, err := s.BuildStore(syntheticFrames(1500))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "session.aims")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadStore(path)
	if err != nil {
		t.Fatal(err)
	}

	if back.Channels != st.Channels || back.TimeBuckets != st.TimeBuckets ||
		back.ValueBins != st.ValueBins || back.TicksPerBucket != st.TicksPerBucket ||
		back.Rate != st.Rate {
		t.Fatalf("metadata drift: %+v vs %+v", back, st)
	}

	// Every query type answers identically.
	dur := 15.0
	n1, _ := st.CountSamples(2, 1, dur)
	n2, err := back.CountSamples(2, 1, dur)
	if err != nil || math.Abs(n1-n2) > 1e-9 {
		t.Fatalf("count drift: %v vs %v (%v)", n1, n2, err)
	}
	a1, _, _ := st.AverageValue(1, 0, dur)
	a2, ok, err := back.AverageValue(1, 0, dur)
	if err != nil || !ok || math.Abs(a1-a2) > 1e-9 {
		t.Fatalf("average drift: %v vs %v", a1, a2)
	}
	v1, _, _ := st.VarianceValue(3, 0, dur)
	v2, _, err := back.VarianceValue(3, 0, dur)
	if err != nil || math.Abs(v1-v2) > 1e-9 {
		t.Fatalf("variance drift: %v vs %v", v1, v2)
	}
	h1, _, _ := st.ValueHistogram(1, 0, dur, 8)
	h2, _, err := back.ValueHistogram(1, 0, dur, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h1 {
		if math.Abs(h1[i]-h2[i]) > 1e-9 {
			t.Fatalf("histogram drift at %d", i)
		}
	}
	// The restored store keeps ingesting.
	if err := back.AppendFrame(1501, []float64{5, 0.5, 0, 0}); err != nil {
		t.Fatal(err)
	}
}

func TestReadStoreRejectsCorruption(t *testing.T) {
	s := New(Config{TimeBuckets: 32, ValueBins: 32})
	st, err := s.BuildStore(syntheticFrames(200))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for name, data := range map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("WRONGMAG"), good[8:]...),
		"truncated": good[:len(good)/2],
	} {
		if _, err := ReadStore(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestReadStoreEveryTruncation feeds ReadStore every strict prefix of a
// valid store. Each one must come back as an error — never a panic, and
// never an allocation driven by a length field the truncation cut short.
func TestReadStoreEveryTruncation(t *testing.T) {
	s := New(Config{TimeBuckets: 8, ValueBins: 8})
	st, err := s.BuildStore(syntheticFrames(50))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for i := 0; i < len(good); i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("prefix %d/%d panicked: %v", i, len(good), r)
				}
			}()
			if _, err := ReadStore(bytes.NewReader(good[:i])); err == nil {
				t.Errorf("prefix %d/%d accepted", i, len(good))
			}
		}()
	}
	// Sanity: the full file still parses.
	if _, err := ReadStore(bytes.NewReader(good)); err != nil {
		t.Fatalf("intact store rejected: %v", err)
	}
}

// TestReadStoreFlippedHeaderBits flips every bit of the structural header
// (magic + channel/bucket/bin counts). A single-bit flip there always
// yields either a non-power-of-two, a zero, or a shape that contradicts
// the engine section, so every one must be rejected.
func TestReadStoreFlippedHeaderBits(t *testing.T) {
	s := New(Config{TimeBuckets: 8, ValueBins: 8})
	st, err := s.BuildStore(syntheticFrames(50))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	const structuralEnd = 8 + 4 + 4 + 4 // magic, channels, timeBuckets, valueBins
	for off := 0; off < structuralEnd; off++ {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), good...)
			bad[off] ^= 1 << bit
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("flip byte %d bit %d panicked: %v", off, bit, r)
					}
				}()
				if _, err := ReadStore(bytes.NewReader(bad)); err == nil {
					t.Errorf("flip byte %d bit %d accepted", off, bit)
				}
			}()
		}
	}
}

func TestReadStoreRejectsImplausibleHeader(t *testing.T) {
	s := New(Config{TimeBuckets: 8, ValueBins: 8})
	st, err := s.BuildStore(syntheticFrames(50))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := st.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	patch := func(off int, v uint32) []byte {
		b := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(b[off:], v)
		return b
	}
	patch64 := func(off int, v uint64) []byte {
		b := append([]byte(nil), good...)
		binary.LittleEndian.PutUint64(b[off:], v)
		return b
	}
	for name, data := range map[string][]byte{
		"zero time buckets":     patch(12, 0),
		"non-pow2 time buckets": patch(12, 12),
		"huge time buckets":     patch(12, 1<<25),
		"zero value bins":       patch(16, 0),
		"huge value bins":       patch(16, 1<<20),
		"zero ticks per bucket": patch(20, 0),
		"huge ticks per bucket": patch(20, 1<<31),
		"zero rate":             patch64(24, 0),
		"negative rate":         patch64(24, math.Float64bits(-100)),
		"NaN rate":              patch64(24, math.Float64bits(math.NaN())),
		"inf rate":              patch64(24, math.Float64bits(math.Inf(1))),
		"NaN quantiser min":     patch64(32, math.Float64bits(math.NaN())),
		"inverted quantiser":    patch64(40, math.Float64bits(-1e9)),
	} {
		if _, err := ReadStore(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadStoreMissingFile(t *testing.T) {
	if _, err := LoadStore(filepath.Join(t.TempDir(), "nope.aims")); err == nil {
		t.Fatal("missing file accepted")
	}
}
