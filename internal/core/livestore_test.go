package core

import (
	"math"
	"sync"
	"testing"

	"aims/internal/stream"
)

func liveCfg() LiveStoreConfig {
	return LiveStoreConfig{Rate: 100, TimeBuckets: 64, ValueBins: 32, HorizonTicks: 1000}
}

func testFrames(n, channels int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, channels)
		for c := range row {
			row[c] = math.Sin(float64(i)/17+float64(c)) * 10
		}
		out[i] = row
	}
	return out
}

func newLive(t *testing.T, channels int) *LiveStore {
	t.Helper()
	mins := make([]float64, channels)
	maxs := make([]float64, channels)
	for c := range mins {
		mins[c], maxs[c] = -10, 10
	}
	ls, err := NewLiveStore(mins, maxs, liveCfg())
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

func TestLiveStoreValidation(t *testing.T) {
	if _, err := NewLiveStore(nil, nil, liveCfg()); err == nil {
		t.Fatal("empty ranges accepted")
	}
	if _, err := NewLiveStore([]float64{0}, []float64{1, 2}, liveCfg()); err == nil {
		t.Fatal("mismatched ranges accepted")
	}
	cfg := liveCfg()
	cfg.TimeBuckets = 100 // not a power of two
	if _, err := NewLiveStore([]float64{0}, []float64{1}, cfg); err == nil {
		t.Fatal("non-power-of-two buckets accepted")
	}
	ls := newLive(t, 2)
	if err := ls.AppendFrame(0, []float64{1}); err == nil {
		t.Fatal("wrong width accepted")
	}
	if err := ls.AppendFrame(-1, []float64{1, 2}); err == nil {
		t.Fatal("negative tick accepted")
	}
	if _, err := ls.CountSamples(5, 0, 1); err == nil {
		t.Fatal("bad channel accepted")
	}
}

func TestLiveStoreExactAggregates(t *testing.T) {
	const channels = 3
	ls := newLive(t, channels)
	frames := testFrames(800, channels)
	for tick, fr := range frames {
		if err := ls.AppendFrame(tick, fr); err != nil {
			t.Fatal(err)
		}
	}
	if ls.Frames() != 800 {
		t.Fatalf("Frames = %d", ls.Frames())
	}
	// Full-range count is exact regardless of quantisation.
	for c := 0; c < channels; c++ {
		n, err := ls.CountSamples(c, 0, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		if n != 800 {
			t.Fatalf("channel %d count = %v, want 800", c, n)
		}
	}
	// A time sub-range count matches direct bucket arithmetic: ticks
	// [0,399] → seconds [0, 3.99].
	n, err := ls.CountSamples(0, 0, 3.99)
	if err != nil {
		t.Fatal(err)
	}
	tpb := ls.TicksPerBucket()
	wantTicks := ((int(3.99*100) / tpb) + 1) * tpb // whole buckets
	if wantTicks > 800 {
		wantTicks = 800
	}
	if int(n) != wantTicks {
		t.Fatalf("sub-range count = %v, want %d", n, wantTicks)
	}
	// Average within one quantisation step of the raw mean.
	var raw float64
	for _, fr := range frames {
		raw += fr[1]
	}
	raw /= float64(len(frames))
	avg, ok, err := ls.AverageValue(1, 0, 1e9)
	if err != nil || !ok {
		t.Fatalf("average: ok=%v err=%v", ok, err)
	}
	step := 20.0 / 31 // range/(bins-1)
	if math.Abs(avg-raw) > step {
		t.Fatalf("avg %v vs raw %v (step %v)", avg, raw, step)
	}
	// Variance positive and near raw variance.
	va, ok, err := ls.VarianceValue(1, 0, 1e9)
	if err != nil || !ok {
		t.Fatalf("variance: ok=%v err=%v", ok, err)
	}
	var rawVar float64
	for _, fr := range frames {
		rawVar += (fr[1] - raw) * (fr[1] - raw)
	}
	rawVar /= float64(len(frames))
	if va <= 0 || math.Abs(va-rawVar) > rawVar*0.2+step*step {
		t.Fatalf("variance %v vs raw %v", va, rawVar)
	}
	// Empty store/range reports ok=false.
	empty := newLive(t, 1)
	if _, ok, _ := empty.AverageValue(0, 0, 1); ok {
		t.Fatal("empty average reported ok")
	}
}

func TestLiveStoreSealMatchesScans(t *testing.T) {
	const channels = 2
	ls := newLive(t, channels)
	for tick, fr := range testFrames(500, channels) {
		if err := ls.AppendFrame(tick, fr); err != nil {
			t.Fatal(err)
		}
	}
	st, err := ls.Seal()
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < channels; c++ {
		for _, win := range [][2]float64{{0, 1e9}, {0, 2}, {1, 4}} {
			want, _ := ls.CountSamples(c, win[0], win[1])
			got, err := st.CountSamples(c, win[0], win[1])
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-6*math.Max(1, want) {
				t.Fatalf("sealed count ch%d %v: %v != %v", c, win, got, want)
			}
		}
		wantAvg, _, _ := ls.AverageValue(c, 0, 1e9)
		gotAvg, ok, err := st.AverageValue(c, 0, 1e9)
		if err != nil || !ok {
			t.Fatalf("sealed avg: ok=%v err=%v", ok, err)
		}
		if math.Abs(gotAvg-wantAvg) > 1e-6 {
			t.Fatalf("sealed avg ch%d: %v != %v", c, gotAvg, wantAvg)
		}
	}
	// Seal is cached until the next append.
	st2, _ := ls.Seal()
	if st2 != st {
		t.Fatal("unchanged store resealed")
	}
	if err := ls.AppendFrame(500, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	st3, _ := ls.Seal()
	if st3 == st {
		t.Fatal("stale seal reused after append")
	}
}

func TestLiveStoreApproximateAndProgressive(t *testing.T) {
	ls := newLive(t, 2)
	for tick, fr := range testFrames(600, 2) {
		if err := ls.AppendFrame(tick, fr); err != nil {
			t.Fatal(err)
		}
	}
	exact, _ := ls.CountSamples(0, 0, 3)
	est, bound, err := ls.ApproximateCount(0, 0, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-exact) > bound+1e-6 {
		t.Fatalf("approx %v outside bound %v of exact %v", est, bound, exact)
	}
	steps, err := ls.ProgressiveCount(0, 0, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no progressive steps")
	}
	last := steps[len(steps)-1]
	if math.Abs(last.Estimate-exact) > 1e-6*math.Max(1, exact) {
		t.Fatalf("final progressive step %v != exact %v", last.Estimate, exact)
	}
	for _, st := range steps {
		if math.Abs(st.Estimate-exact) > st.ErrorBound+1e-6 {
			t.Fatalf("step %d: estimate %v outside bound %v", st.Coefficients, st.Estimate, st.ErrorBound)
		}
	}
}

func TestLiveStoreAppendFrames(t *testing.T) {
	ls := newLive(t, 2)
	frames := []stream.Frame{
		{T: 0, Values: []float64{1, 2}},
		{T: 0.01, Values: []float64{3, 4}},
		{T: 0.02, Values: []float64{5, 6}},
	}
	if err := ls.AppendFrames(frames); err != nil {
		t.Fatal(err)
	}
	if n, _ := ls.CountSamples(0, 0, 1e9); n != 3 {
		t.Fatalf("count = %v", n)
	}
}

// TestLiveStoreConcurrentIngestAndQuery is the server path under -race:
// one appender, many concurrent exact/approximate readers, and the
// frame-atomicity invariant (every channel of a frame becomes visible
// together, so per-channel counts always agree).
func TestLiveStoreConcurrentIngestAndQuery(t *testing.T) {
	const channels = 4
	const total = 3000
	ls := newLive(t, channels)
	frames := testFrames(total, channels)

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for tick, fr := range frames {
			if err := ls.AppendFrame(tick, fr); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				counts := make([]float64, channels)
				for c := 0; c < channels; c++ {
					n, err := ls.CountSamples(c, 0, 1e9)
					if err != nil {
						t.Error(err)
						return
					}
					counts[c] = n
				}
				// Channel 0 is counted first by AppendFrame; later
				// channels can never be ahead of it by a full frame.
				for c := 1; c < channels; c++ {
					if counts[c] > counts[0] {
						t.Errorf("channel %d count %v ahead of channel 0 (%v)", c, counts[c], counts[0])
						return
					}
				}
				if _, _, err := ls.ApproximateCount(1, 0, 5, 8); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n, _ := ls.CountSamples(channels-1, 0, 1e9); n != total {
		t.Fatalf("final count %v != %d", n, total)
	}
}
