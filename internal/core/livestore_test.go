package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"aims/internal/stream"
)

func liveCfg() LiveStoreConfig {
	return LiveStoreConfig{Rate: 100, TimeBuckets: 64, ValueBins: 32, HorizonTicks: 1000}
}

func testFrames(n, channels int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, channels)
		for c := range row {
			row[c] = math.Sin(float64(i)/17+float64(c)) * 10
		}
		out[i] = row
	}
	return out
}

func newLive(t *testing.T, channels int) *LiveStore {
	t.Helper()
	mins := make([]float64, channels)
	maxs := make([]float64, channels)
	for c := range mins {
		mins[c], maxs[c] = -10, 10
	}
	ls, err := NewLiveStore(mins, maxs, liveCfg())
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

func TestLiveStoreValidation(t *testing.T) {
	if _, err := NewLiveStore(nil, nil, liveCfg()); err == nil {
		t.Fatal("empty ranges accepted")
	}
	if _, err := NewLiveStore([]float64{0}, []float64{1, 2}, liveCfg()); err == nil {
		t.Fatal("mismatched ranges accepted")
	}
	cfg := liveCfg()
	cfg.TimeBuckets = 100 // not a power of two
	if _, err := NewLiveStore([]float64{0}, []float64{1}, cfg); err == nil {
		t.Fatal("non-power-of-two buckets accepted")
	}
	ls := newLive(t, 2)
	if err := ls.AppendFrame(0, []float64{1}); err == nil {
		t.Fatal("wrong width accepted")
	}
	if err := ls.AppendFrame(-1, []float64{1, 2}); err == nil {
		t.Fatal("negative tick accepted")
	}
	if _, err := ls.CountSamples(5, 0, 1); err == nil {
		t.Fatal("bad channel accepted")
	}
}

func TestLiveStoreExactAggregates(t *testing.T) {
	const channels = 3
	ls := newLive(t, channels)
	frames := testFrames(800, channels)
	for tick, fr := range frames {
		if err := ls.AppendFrame(tick, fr); err != nil {
			t.Fatal(err)
		}
	}
	if ls.Frames() != 800 {
		t.Fatalf("Frames = %d", ls.Frames())
	}
	// Full-range count is exact regardless of quantisation.
	for c := 0; c < channels; c++ {
		n, err := ls.CountSamples(c, 0, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		if n != 800 {
			t.Fatalf("channel %d count = %v, want 800", c, n)
		}
	}
	// A time sub-range count matches direct bucket arithmetic: ticks
	// [0,399] → seconds [0, 3.99].
	n, err := ls.CountSamples(0, 0, 3.99)
	if err != nil {
		t.Fatal(err)
	}
	tpb := ls.TicksPerBucket()
	wantTicks := ((int(3.99*100) / tpb) + 1) * tpb // whole buckets
	if wantTicks > 800 {
		wantTicks = 800
	}
	if int(n) != wantTicks {
		t.Fatalf("sub-range count = %v, want %d", n, wantTicks)
	}
	// Average within one quantisation step of the raw mean.
	var raw float64
	for _, fr := range frames {
		raw += fr[1]
	}
	raw /= float64(len(frames))
	avg, ok, err := ls.AverageValue(1, 0, 1e9)
	if err != nil || !ok {
		t.Fatalf("average: ok=%v err=%v", ok, err)
	}
	step := 20.0 / 31 // range/(bins-1)
	if math.Abs(avg-raw) > step {
		t.Fatalf("avg %v vs raw %v (step %v)", avg, raw, step)
	}
	// Variance positive and near raw variance.
	va, ok, err := ls.VarianceValue(1, 0, 1e9)
	if err != nil || !ok {
		t.Fatalf("variance: ok=%v err=%v", ok, err)
	}
	var rawVar float64
	for _, fr := range frames {
		rawVar += (fr[1] - raw) * (fr[1] - raw)
	}
	rawVar /= float64(len(frames))
	if va <= 0 || math.Abs(va-rawVar) > rawVar*0.2+step*step {
		t.Fatalf("variance %v vs raw %v", va, rawVar)
	}
	// Empty store/range reports ok=false.
	empty := newLive(t, 1)
	if _, ok, _ := empty.AverageValue(0, 0, 1); ok {
		t.Fatal("empty average reported ok")
	}
}

func TestLiveStoreSealMatchesScans(t *testing.T) {
	const channels = 2
	ls := newLive(t, channels)
	for tick, fr := range testFrames(500, channels) {
		if err := ls.AppendFrame(tick, fr); err != nil {
			t.Fatal(err)
		}
	}
	st, err := ls.Seal()
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < channels; c++ {
		for _, win := range [][2]float64{{0, 1e9}, {0, 2}, {1, 4}} {
			want, _ := ls.CountSamples(c, win[0], win[1])
			got, err := st.CountSamples(c, win[0], win[1])
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-6*math.Max(1, want) {
				t.Fatalf("sealed count ch%d %v: %v != %v", c, win, got, want)
			}
		}
		wantAvg, _, _ := ls.AverageValue(c, 0, 1e9)
		gotAvg, ok, err := st.AverageValue(c, 0, 1e9)
		if err != nil || !ok {
			t.Fatalf("sealed avg: ok=%v err=%v", ok, err)
		}
		if math.Abs(gotAvg-wantAvg) > 1e-6 {
			t.Fatalf("sealed avg ch%d: %v != %v", c, gotAvg, wantAvg)
		}
	}
	// Seal is cached until the next append.
	st2, _ := ls.Seal()
	if st2 != st {
		t.Fatal("unchanged store resealed")
	}
	// After an append the seal is brought up to date (incrementally, so
	// the same engine object may be returned — what matters is that the
	// answer reflects the new frame).
	before, _ := st.CountSamples(0, 0, 1e9)
	if err := ls.AppendFrame(500, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	st3, err := ls.Seal()
	if err != nil {
		t.Fatal(err)
	}
	after, _ := st3.CountSamples(0, 0, 1e9)
	if after != before+1 {
		t.Fatalf("resealed count %v, want %v", after, before+1)
	}
}

func TestLiveStoreApproximateAndProgressive(t *testing.T) {
	ls := newLive(t, 2)
	for tick, fr := range testFrames(600, 2) {
		if err := ls.AppendFrame(tick, fr); err != nil {
			t.Fatal(err)
		}
	}
	exact, _ := ls.CountSamples(0, 0, 3)
	est, bound, err := ls.ApproximateCount(0, 0, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-exact) > bound+1e-6 {
		t.Fatalf("approx %v outside bound %v of exact %v", est, bound, exact)
	}
	steps, err := ls.ProgressiveCount(0, 0, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no progressive steps")
	}
	last := steps[len(steps)-1]
	if math.Abs(last.Estimate-exact) > 1e-6*math.Max(1, exact) {
		t.Fatalf("final progressive step %v != exact %v", last.Estimate, exact)
	}
	for _, st := range steps {
		if math.Abs(st.Estimate-exact) > st.ErrorBound+1e-6 {
			t.Fatalf("step %d: estimate %v outside bound %v", st.Coefficients, st.Estimate, st.ErrorBound)
		}
	}
}

func TestLiveStoreAppendFrames(t *testing.T) {
	ls := newLive(t, 2)
	frames := []stream.Frame{
		{T: 0, Values: []float64{1, 2}},
		{T: 0.01, Values: []float64{3, 4}},
		{T: 0.02, Values: []float64{5, 6}},
	}
	stored, err := ls.AppendFrames(frames)
	if err != nil {
		t.Fatal(err)
	}
	if stored != 3 {
		t.Fatalf("stored = %d", stored)
	}
	if n, _ := ls.CountSamples(0, 0, 1e9); n != 3 {
		t.Fatalf("count = %v", n)
	}
	// Invalid frames are skipped, not fatal: the rest of the batch lands.
	stored, err = ls.AppendFrames([]stream.Frame{
		{T: -5, Values: []float64{1, 2}},    // negative tick
		{T: 0.03, Values: []float64{7}},     // wrong width
		{T: 0.04, Values: []float64{9, 10}}, // fine
	})
	if err == nil {
		t.Fatal("bad frames reported no error")
	}
	if stored != 1 {
		t.Fatalf("stored = %d, want 1", stored)
	}
	if n, _ := ls.CountSamples(0, 0, 1e9); n != 4 {
		t.Fatalf("count = %v, want 4", n)
	}
}

// TestLiveStoreConcurrentIngestAndQuery is the server path under -race:
// one appender, many concurrent exact/approximate readers, and the
// frame-atomicity invariant (every channel of a frame becomes visible
// together, so per-channel counts always agree).
func TestLiveStoreConcurrentIngestAndQuery(t *testing.T) {
	const channels = 4
	const total = 3000
	ls := newLive(t, channels)
	frames := testFrames(total, channels)

	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for tick, fr := range frames {
			if err := ls.AppendFrame(tick, fr); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				counts := make([]float64, channels)
				for c := 1; c < channels; c++ {
					n, err := ls.CountSamples(c, 0, 1e9)
					if err != nil {
						t.Error(err)
						return
					}
					counts[c] = n
				}
				// Channel 0 is counted first by AppendFrame, so at any
				// instant no channel is ahead of it, and counts only grow:
				// a channel-0 count read AFTER the others bounds them all.
				// (Reading it first would race the appender: a frame landing
				// between the reads legitimately puts later channels ahead
				// of a stale channel-0 value.)
				c0, err := ls.CountSamples(0, 0, 1e9)
				if err != nil {
					t.Error(err)
					return
				}
				for c := 1; c < channels; c++ {
					if counts[c] > c0 {
						t.Errorf("channel %d count %v ahead of channel 0 (%v)", c, counts[c], c0)
						return
					}
				}
				if _, _, err := ls.ApproximateCount(1, 0, 5, 8); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n, _ := ls.CountSamples(channels-1, 0, 1e9); n != total {
		t.Fatalf("final count %v != %d", n, total)
	}
}

// mkLive builds a live store with an explicit incremental-seal threshold
// (-1 disables incremental sealing: every Seal is a from-scratch rebuild,
// the reference the equivalence tests compare against).
func mkLive(t *testing.T, channels, threshold int) *LiveStore {
	t.Helper()
	mins := make([]float64, channels)
	maxs := make([]float64, channels)
	for c := range mins {
		mins[c], maxs[c] = -10, 10
	}
	cfg := liveCfg()
	cfg.SealDeltaThreshold = threshold
	ls, err := NewLiveStore(mins, maxs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ls
}

// sealsAgree asserts COUNT/AVERAGE/VARIANCE parity of two sealed stores
// over the full range plus random windows of every channel.
func sealsAgree(t *testing.T, rng *rand.Rand, a, b *Store, channels int) {
	t.Helper()
	windows := [][2]float64{{0, 1e9}}
	for i := 0; i < 3; i++ {
		t0 := rng.Float64() * 8
		windows = append(windows, [2]float64{t0, t0 + rng.Float64()*4})
	}
	const tol = 1e-6
	for c := 0; c < channels; c++ {
		for _, w := range windows {
			ca, err := a.CountSamples(c, w[0], w[1])
			if err != nil {
				t.Fatal(err)
			}
			cb, err := b.CountSamples(c, w[0], w[1])
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(ca-cb) > tol*math.Max(1, math.Abs(cb)) {
				t.Fatalf("ch%d %v: incremental count %v != rebuild %v", c, w, ca, cb)
			}
			aa, okA, _ := a.AverageValue(c, w[0], w[1])
			ab, okB, _ := b.AverageValue(c, w[0], w[1])
			if okA != okB || (okA && math.Abs(aa-ab) > tol*math.Max(1, math.Abs(ab))) {
				t.Fatalf("ch%d %v: incremental avg %v/%v != rebuild %v/%v", c, w, aa, okA, ab, okB)
			}
			va, okA, _ := a.VarianceValue(c, w[0], w[1])
			vb, okB, _ := b.VarianceValue(c, w[0], w[1])
			if okA != okB || (okA && math.Abs(va-vb) > tol*math.Max(1, math.Abs(vb))) {
				t.Fatalf("ch%d %v: incremental var %v/%v != rebuild %v/%v", c, w, va, okA, vb, okB)
			}
		}
	}
}

// TestLiveStoreIncrementalSealEquivalence is the incremental-seal
// property test: a random interleaving of appends, seals and exact scans,
// asserting at every checkpoint that the incrementally sealed engine
// answers COUNT/AVERAGE/VARIANCE identically to a from-scratch rebuild of
// the same data. The tiny-threshold case forces delta-log overflows so
// the rebuild fallback and the resumed tracking afterwards are covered
// too.
func TestLiveStoreIncrementalSealEquivalence(t *testing.T) {
	cases := []struct {
		name      string
		threshold int
	}{
		{"default-threshold", 0},
		{"tiny-threshold-overflows", 48},
	}
	const channels = 3
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7 + tc.threshold)))
			inc := mkLive(t, channels, tc.threshold)
			ref := mkLive(t, channels, -1)
			tick := 0
			for step := 0; step < 600; step++ {
				switch rng.Intn(12) {
				case 0: // checkpoint: seal both, compare
					stInc, err := inc.Seal()
					if err != nil {
						t.Fatal(err)
					}
					stRef, err := ref.Seal()
					if err != nil {
						t.Fatal(err)
					}
					sealsAgree(t, rng, stInc, stRef, channels)
				case 1: // exact scan parity on the live cubes
					c := rng.Intn(channels)
					t0 := rng.Float64() * 8
					t1 := t0 + rng.Float64()*4
					ni, _ := inc.CountSamples(c, t0, t1)
					nr, _ := ref.CountSamples(c, t0, t1)
					if ni != nr {
						t.Fatalf("live scan diverged: %v != %v", ni, nr)
					}
				default: // append 1–4 frames to both stores
					for k := 0; k < 1+rng.Intn(4); k++ {
						fr := make([]float64, channels)
						for c := range fr {
							fr[c] = rng.Float64()*20 - 10
						}
						if err := inc.AppendFrame(tick, fr); err != nil {
							t.Fatal(err)
						}
						if err := ref.AppendFrame(tick, fr); err != nil {
							t.Fatal(err)
						}
						tick++
					}
				}
			}
			// Final quiescent checkpoint.
			stInc, err := inc.Seal()
			if err != nil {
				t.Fatal(err)
			}
			stRef, err := ref.Seal()
			if err != nil {
				t.Fatal(err)
			}
			sealsAgree(t, rng, stInc, stRef, channels)
		})
	}
}

// TestLiveStoreIncrementalSealConcurrent seals repeatedly while an
// appender runs (the -race half of the property test): every sealed
// answer must be consistent with some version between the counts read
// before and after the seal, and the final seal must match a from-scratch
// rebuild of the same frames.
func TestLiveStoreIncrementalSealConcurrent(t *testing.T) {
	const channels = 2
	const total = 1500
	inc := mkLive(t, channels, 0)
	frames := testFrames(total, channels)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for tick, fr := range frames {
			if err := inc.AppendFrame(tick, fr); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for alive := true; alive; {
		select {
		case <-done:
			alive = false
		default:
		}
		before, _ := inc.CountSamples(0, 0, 1e9)
		st, err := inc.Seal()
		if err != nil {
			t.Fatal(err)
		}
		sealed, err := st.CountSamples(0, 0, 1e9)
		if err != nil {
			t.Fatal(err)
		}
		after, _ := inc.CountSamples(0, 0, 1e9)
		if sealed < before-1e-6 || sealed > after+1e-6 {
			t.Fatalf("sealed count %v outside live window [%v, %v]", sealed, before, after)
		}
	}

	ref := mkLive(t, channels, -1)
	for tick, fr := range frames {
		if err := ref.AppendFrame(tick, fr); err != nil {
			t.Fatal(err)
		}
	}
	stInc, err := inc.Seal()
	if err != nil {
		t.Fatal(err)
	}
	stRef, err := ref.Seal()
	if err != nil {
		t.Fatal(err)
	}
	sealsAgree(t, rand.New(rand.NewSource(99)), stInc, stRef, channels)
}
