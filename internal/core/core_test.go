package core

import (
	"math"
	"math/rand"
	"testing"

	"aims/internal/sensors"
	"aims/internal/stream"
	"aims/internal/svdstream"
	"aims/internal/synth"
)

func TestConfigDefaults(t *testing.T) {
	s := New(Config{})
	cfg := s.Config()
	if cfg.DeviceRate != 100 || cfg.TimeBuckets != 512 || cfg.ValueBins != 128 {
		t.Fatalf("defaults: %+v", cfg)
	}
}

func TestAcquireCollectsAllFrames(t *testing.T) {
	s := New(Config{})
	dev := sensors.NewDevice(sensors.GloveSpecs(), sensors.DefaultClock, 1, 3)
	src := &stream.FuncSource{Rate: sensors.DefaultClock, N: 700, Fn: dev.Frame}
	frames, stats := s.Acquire(src)
	if len(frames) != 700 || stats.Stored != 700 || stats.Dropped != 0 {
		t.Fatalf("acquired %d frames, stats %+v", len(frames), stats)
	}
	if len(frames[0]) != 28 {
		t.Fatalf("frame width %d", len(frames[0]))
	}
}

// syntheticFrames builds a deterministic 4-channel recording with known
// statistics: channel 0 constant, channel 1 a ramp, channels 2-3
// correlated noise.
func syntheticFrames(n int) [][]float64 {
	rng := rand.New(rand.NewSource(5))
	frames := make([][]float64, n)
	for i := range frames {
		shared := rng.NormFloat64()
		frames[i] = []float64{
			5,
			float64(i) / float64(n),
			shared + 0.1*rng.NormFloat64(),
			shared + 0.1*rng.NormFloat64(),
		}
	}
	return frames
}

func TestBuildStoreAndQueries(t *testing.T) {
	s := New(Config{TimeBuckets: 64, ValueBins: 64, DeviceRate: 100})
	frames := syntheticFrames(2000)
	st, err := s.BuildStore(frames)
	if err != nil {
		t.Fatal(err)
	}
	dur := 2000.0 / 100

	// Counts: every channel has one sample per tick.
	n, err := st.CountSamples(0, 0, dur)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(n-2000) > 1e-6 {
		t.Fatalf("count = %v, want 2000", n)
	}

	// Constant channel averages to its value (within a quantisation step).
	avg, ok, err := st.AverageValue(0, 0, dur)
	if err != nil || !ok {
		t.Fatalf("AverageValue: %v %v", ok, err)
	}
	if math.Abs(avg-5) > 0.2 {
		t.Fatalf("avg = %v, want ≈5", avg)
	}

	// Ramp channel: first half averages ≈0.25, second ≈0.75.
	avgLo, _, err := st.AverageValue(1, 0, dur/2)
	if err != nil {
		t.Fatal(err)
	}
	avgHi, _, err := st.AverageValue(1, dur/2, dur)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(avgLo-0.25) > 0.06 || math.Abs(avgHi-0.75) > 0.06 {
		t.Fatalf("ramp halves: %v, %v", avgLo, avgHi)
	}

	// Variance of the constant channel ≈ 0; of the ramp ≈ 1/12.
	v0, _, err := st.VarianceValue(0, 0, dur)
	if err != nil {
		t.Fatal(err)
	}
	if v0 > 0.01 {
		t.Fatalf("constant variance = %v", v0)
	}
	v1, _, err := st.VarianceValue(1, 0, dur)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1-1.0/12) > 0.02 {
		t.Fatalf("ramp variance = %v, want ≈%v", v1, 1.0/12)
	}
}

func TestApproximateCountWithinBound(t *testing.T) {
	s := New(Config{TimeBuckets: 64, ValueBins: 64})
	st, err := s.BuildStore(syntheticFrames(1500))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := st.CountSamples(2, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	est, bound, err := st.ApproximateCount(2, 1, 10, 40)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-exact) > bound+1e-6 {
		t.Fatalf("estimate %v vs exact %v outside bound %v", est, exact, bound)
	}
}

func TestStoreRejectsBadChannel(t *testing.T) {
	s := New(Config{TimeBuckets: 32, ValueBins: 32})
	st, err := s.BuildStore(syntheticFrames(100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.CountSamples(99, 0, 1); err == nil {
		t.Fatal("bad channel accepted")
	}
}

func TestBuildStoreEmptyInput(t *testing.T) {
	if _, err := New(Config{}).BuildStore(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestAppendFrameMatchesBatchBuild(t *testing.T) {
	s := New(Config{TimeBuckets: 32, ValueBins: 32})
	frames := syntheticFrames(300)

	batch, err := s.BuildStore(frames)
	if err != nil {
		t.Fatal(err)
	}
	// Incremental: build from the first 200 frames, append the rest.
	inc, err := s.BuildStore(frames[:200])
	if err != nil {
		t.Fatal(err)
	}
	// Quantisers differ if the tail extends the observed range; keep the
	// comparison fair by checking only that appended counts line up.
	for i := 200; i < 300; i++ {
		if err := inc.AppendFrame(i, frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	nBatch, err := batch.CountSamples(1, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	nInc, err := inc.CountSamples(1, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nBatch-300) > 1e-6 || math.Abs(nInc-300) > 1e-6 {
		t.Fatalf("counts: batch %v inc %v, want 300", nBatch, nInc)
	}
	// Append validation.
	if err := inc.AppendFrame(0, []float64{1}); err == nil {
		t.Fatal("short frame accepted")
	}
	// Ticks beyond the horizon clamp rather than fail.
	if err := inc.AppendFrame(1<<20, frames[0]); err != nil {
		t.Fatal(err)
	}
}

func TestValueTimeSeries(t *testing.T) {
	s := New(Config{TimeBuckets: 64, ValueBins: 64})
	st, err := s.BuildStore(syntheticFrames(2000))
	if err != nil {
		t.Fatal(err)
	}
	dur := 2000.0 / 100
	avgs, counts, err := st.ValueTimeSeries(1, 0, dur, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(avgs) != 8 || len(counts) != 8 {
		t.Fatalf("shape %d/%d", len(avgs), len(counts))
	}
	// The ramp channel's per-window averages ascend roughly as (k+0.5)/8;
	// the window widths vary slightly because 63 time buckets split into 8.
	for k := 0; k < 8; k++ {
		want := (float64(k) + 0.5) / 8
		if math.Abs(avgs[k]-want) > 0.07 {
			t.Fatalf("window %d avg %v, want ≈%v (%v)", k, avgs[k], want, avgs)
		}
		if counts[k] < 180 || counts[k] > 320 {
			t.Fatalf("window %d count %v (%v)", k, counts[k], counts)
		}
		if k > 0 && avgs[k] <= avgs[k-1] {
			t.Fatalf("averages not ascending: %v", avgs)
		}
	}
	// The windows partition the box: counts sum to the box total.
	total, err := st.CountSamples(1, 0, dur)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, c := range counts {
		sum += c
	}
	if math.Abs(sum-total) > 1e-6 {
		t.Fatalf("window counts %v != box total %v", sum, total)
	}
	if _, _, err := st.ValueTimeSeries(99, 0, 1, 4); err == nil {
		t.Fatal("bad channel accepted")
	}
}

func TestValueHistogram(t *testing.T) {
	s := New(Config{TimeBuckets: 64, ValueBins: 64})
	frames := syntheticFrames(2000)
	st, err := s.BuildStore(frames)
	if err != nil {
		t.Fatal(err)
	}
	dur := 2000.0 / 100
	counts, mids, err := st.ValueHistogram(1, 0, dur, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 8 || len(mids) != 8 {
		t.Fatalf("histogram shape %d/%d", len(counts), len(mids))
	}
	// The ramp channel is uniform: every bucket holds ≈ 2000/8 samples.
	var total float64
	for _, c := range counts {
		total += c
		if c < 150 || c > 350 {
			t.Fatalf("uniform ramp bucket count %v, want ≈250 (%v)", c, counts)
		}
	}
	if math.Abs(total-2000) > 1e-6 {
		t.Fatalf("histogram mass %v", total)
	}
	// Midpoints ascend through the value range.
	for i := 1; i < len(mids); i++ {
		if mids[i] <= mids[i-1] {
			t.Fatalf("midpoints not ascending: %v", mids)
		}
	}
	// Constant channel: all mass in the single bucket containing 5.
	counts0, mids0, err := st.ValueHistogram(0, 0, dur, 4)
	if err != nil {
		t.Fatal(err)
	}
	var nonzero int
	for i, c := range counts0 {
		if c > 0 {
			nonzero++
			_ = mids0[i]
		}
	}
	if nonzero != 1 {
		t.Fatalf("constant channel spread across %d buckets (%v)", nonzero, counts0)
	}
	if _, _, err := st.ValueHistogram(99, 0, 1, 4); err == nil {
		t.Fatal("bad channel accepted")
	}
}

func TestBuildTemplatesAndRecognizerEndToEnd(t *testing.T) {
	sys := New(Config{})
	vocab := synth.Vocabulary(4, 21)
	rng := rand.New(rand.NewSource(22))
	refs := make(map[string][][][]float64, len(vocab))
	for _, sign := range vocab {
		refs[sign.Name] = [][][]float64{
			sign.Render(0.8, 0.1, rng),
			sign.Render(1.0, 0.1, rng),
			sign.Render(1.2, 0.1, rng),
		}
	}
	templates := BuildTemplates(refs)
	if len(templates) != 4 {
		t.Fatalf("templates = %d", len(templates))
	}

	frames, segs := synth.SignStream(vocab, synth.StreamOptions{
		Count: 8, Noise: 0.4, DurJitter: 0.25, GapTicks: 50, Seed: 23,
	})
	r := sys.NewRecognizer(templates, frames[:20], synth.SignDims)
	var dets []svdstream.Detection
	for tick, fr := range frames {
		if d := r.Feed(tick, fr); d != nil {
			dets = append(dets, *d)
		}
	}
	if d := r.Flush(len(frames)); d != nil {
		dets = append(dets, *d)
	}
	if len(dets) < len(segs)*7/10 {
		t.Fatalf("detected %d motions of %d", len(dets), len(segs))
	}
}

func TestSpeedSeriesAndCovariance(t *testing.T) {
	frames := [][]float64{{0, 0, 0, 1}, {3, 4, 0, 2}, {3, 4, 12, 3}}
	sp := SpeedSeries(frames, 0, 1, 2, 10)
	if len(sp) != 2 {
		t.Fatalf("speed length %d", len(sp))
	}
	if math.Abs(sp[0]-50) > 1e-9 { // dist 5 · rate 10
		t.Fatalf("speed[0] = %v", sp[0])
	}
	if math.Abs(sp[1]-120) > 1e-9 {
		t.Fatalf("speed[1] = %v", sp[1])
	}
	if got := SpeedSeries(frames[:1], 0, 1, 2, 10); got != nil {
		t.Fatal("short input")
	}
	// Covariance of a channel with itself is its variance.
	c := CovarianceOfChannels(frames, 3, 3)
	if math.Abs(c-2.0/3) > 1e-9 {
		t.Fatalf("cov = %v", c)
	}
}
