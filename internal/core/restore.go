package core

import (
	"fmt"
	"math"

	"aims/internal/wavelet"
)

// RestoreLiveStore rebuilds an ingest-side LiveStore from a sealed Store —
// the inverse of LiveStore.Seal. A sealed store holds the session's count
// cube wavelet-transformed along the engine's non-standard axes, so the
// restore inverse-transforms the coefficients back into counts. Counts are
// integers by construction; a reconstructed cell that is materially
// non-integral or negative means the serialized coefficients were damaged
// in a way the outer checksums missed, and the restore fails rather than
// resurrect a corrupt session.
//
// cfg supplies the non-shape knobs (seal threshold, observer, max degree);
// the shape — rate, buckets, bins, horizon, per-channel value ranges — is
// taken from the store itself. The restored LiveStore seeds its seal cache
// with st, so the first post-restore Seal is incremental, not a rebuild.
func RestoreLiveStore(st *Store, cfg LiveStoreConfig) (*LiveStore, error) {
	if st == nil || st.Engine == nil {
		return nil, fmt.Errorf("core: restore of nil store")
	}
	eng := st.Engine
	chDim := nextPow2(st.Channels)
	wantDims := []int{chDim, st.TimeBuckets, st.ValueBins}
	if len(eng.Dims) != len(wantDims) {
		return nil, fmt.Errorf("core: restore: engine has %d dims, want %d", len(eng.Dims), len(wantDims))
	}
	for i, n := range wantDims {
		if eng.Dims[i] != n {
			return nil, fmt.Errorf("core: restore: engine dims %v incompatible with store shape %v", []int(eng.Dims), wantDims)
		}
	}

	mins := make([]float64, st.Channels)
	maxs := make([]float64, st.Channels)
	for c, q := range st.quant {
		mins[c], maxs[c] = q.Min, q.Max
	}
	cfg.Rate = st.Rate
	cfg.TimeBuckets = st.TimeBuckets
	cfg.ValueBins = st.ValueBins
	cfg.HorizonTicks = st.TicksPerBucket * st.TimeBuckets
	ls, err := NewLiveStore(mins, maxs, cfg)
	if err != nil {
		return nil, err
	}
	// Carry the exact registration-time quantizers over: QuantizerFor-built
	// stores may differ from NewQuantizer's rounding of the same range.
	copy(ls.quant, st.quant)

	// Separable per-axis transforms commute, so inversion order is free.
	data := append([]float64(nil), eng.Coeffs...)
	for axis, b := range eng.Bases {
		if !b.Standard {
			wavelet.InverseAxis(data, eng.Dims, axis, b.Filter, eng.Levels[axis])
		}
	}

	tb, vb := st.TimeBuckets, st.ValueBins
	var total uint64
	for i, v := range data {
		r := math.Round(v)
		if math.Abs(v-r) > 1e-3 || r < 0 || r > math.MaxUint32 {
			return nil, fmt.Errorf("core: restore: cell %d reconstructs to %v, not a count", i, v)
		}
		ch := i / (tb * vb)
		if ch >= st.Channels {
			if r != 0 {
				return nil, fmt.Errorf("core: restore: padding channel %d holds count %v", ch, r)
			}
			continue
		}
		ls.cube[i] = uint32(r)
		total += uint64(r)
	}
	if total%uint64(st.Channels) != 0 {
		return nil, fmt.Errorf("core: restore: %d counts do not divide into %d channels", total, st.Channels)
	}
	ls.frames = int(total / uint64(st.Channels))
	ls.version = uint64(ls.frames)

	// Seed the seal cache: st's engine already holds exactly this cube, so
	// post-restore appends can replay incrementally instead of rebuilding.
	ls.sealed = st
	ls.sealedVersion = ls.version
	if ls.deltaLimit > 0 {
		ls.track = true
	}
	return ls, nil
}
