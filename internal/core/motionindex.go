package core

import (
	"fmt"

	"aims/internal/compress"
	"aims/internal/propolyne"
	"aims/internal/svdstream"
	"aims/internal/vec"
)

// MotionIndex realises the full §3.4.1 port: the SVD similarity measure
// evaluated over *stored* immersidata entirely through ProPolyne
// range-sums. For each pair of indexed channels it keeps a 3-D frequency
// cube (time-bucket, value_i, value_j); the second-moment matrix of ANY
// historical time window is then a batch of degree-2 polynomial range-sums
// in the wavelet domain, and its eigen-decomposition is the window's
// motion signature. This turns "which sign occurred between t0 and t1?"
// into an off-line query — no raw frames needed after ingest.
type MotionIndex struct {
	Channels    []int
	TimeBuckets int
	Bins        int
	Rate        float64

	ticksPerBucket int
	quant          []compress.Quantizer
	// engines[k] is the pair (i,j) engine with k enumerating i ≤ j.
	engines []*propolyne.Engine
	pairs   [][2]int
}

// MotionIndexConfig sizes the index.
type MotionIndexConfig struct {
	// Channels to index (the similarity space); keep it small — storage is
	// quadratic in len(Channels). Required.
	Channels []int
	// TimeBuckets (power of two, default 256) and Bins (power of two,
	// default 32) set the cube resolution.
	TimeBuckets, Bins int
	// Rate is the device clock (default 100 Hz).
	Rate float64
}

// NewMotionIndex ingests a time-major frame recording into the index.
func NewMotionIndex(frames [][]float64, cfg MotionIndexConfig) (*MotionIndex, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("core: no frames to index")
	}
	if len(cfg.Channels) == 0 {
		return nil, fmt.Errorf("core: MotionIndexConfig.Channels required")
	}
	if cfg.TimeBuckets <= 0 {
		cfg.TimeBuckets = 256
	}
	if cfg.Bins <= 0 {
		cfg.Bins = 32
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 100
	}
	width := len(frames[0])
	for _, c := range cfg.Channels {
		if c < 0 || c >= width {
			return nil, fmt.Errorf("core: channel %d outside frame width %d", c, width)
		}
	}

	mi := &MotionIndex{
		Channels:    append([]int(nil), cfg.Channels...),
		TimeBuckets: cfg.TimeBuckets,
		Bins:        cfg.Bins,
		Rate:        cfg.Rate,
	}
	mi.ticksPerBucket = (len(frames) + cfg.TimeBuckets - 1) / cfg.TimeBuckets
	if mi.ticksPerBucket < 1 {
		mi.ticksPerBucket = 1
	}

	bits := log2(cfg.Bins)
	mi.quant = make([]compress.Quantizer, len(mi.Channels))
	cols := make([][]float64, len(mi.Channels))
	for k, c := range mi.Channels {
		col := make([]float64, len(frames))
		for t := range frames {
			col[t] = frames[t][c]
		}
		cols[k] = col
		mi.quant[k] = compress.QuantizerFor(col, bits)
	}

	// One cube per unordered pair (including i == j for the diagonal).
	dims := []int{cfg.TimeBuckets, cfg.Bins, cfg.Bins}
	for i := 0; i < len(mi.Channels); i++ {
		for j := i; j < len(mi.Channels); j++ {
			cube := make([]float64, dims[0]*dims[1]*dims[2])
			for t := range frames {
				tb := t / mi.ticksPerBucket
				if tb >= cfg.TimeBuckets {
					tb = cfg.TimeBuckets - 1
				}
				bi := mi.quant[i].Quantize(cols[i][t])
				bj := mi.quant[j].Quantize(cols[j][t])
				cube[(tb*cfg.Bins+bi)*cfg.Bins+bj]++
			}
			eng, err := propolyne.New(cube, dims, 2)
			if err != nil {
				return nil, err
			}
			mi.engines = append(mi.engines, eng)
			mi.pairs = append(mi.pairs, [2]int{i, j})
		}
	}
	return mi, nil
}

// AppendFrame ingests one frame into the index incrementally: each pair
// cube receives a single tuple, updated through the sparse wavelet delta —
// the index stays query-able while the stream runs.
func (mi *MotionIndex) AppendFrame(tick int, frame []float64) error {
	tb := tick / mi.ticksPerBucket
	if tb >= mi.TimeBuckets {
		tb = mi.TimeBuckets - 1
	}
	bins := make([]int, len(mi.Channels))
	for k, c := range mi.Channels {
		if c >= len(frame) {
			return fmt.Errorf("core: frame width %d lacks channel %d", len(frame), c)
		}
		bins[k] = mi.quant[k].Quantize(frame[c])
	}
	for k, pair := range mi.pairs {
		if err := mi.engines[k].Append([]int{tb, bins[pair[0]], bins[pair[1]]}, 1); err != nil {
			return err
		}
	}
	return nil
}

// MomentMatrix returns the uncentered second-moment matrix (in quantised
// bin units) of the indexed channels over [t0, t1] seconds, computed
// exclusively from wavelet-domain range-sums, plus the window's sample
// count.
func (mi *MotionIndex) MomentMatrix(t0, t1 float64) ([][]float64, float64, error) {
	tlo := int(t0 * mi.Rate / float64(mi.ticksPerBucket))
	thi := int(t1 * mi.Rate / float64(mi.ticksPerBucket))
	if tlo < 0 {
		tlo = 0
	}
	if thi >= mi.TimeBuckets {
		thi = mi.TimeBuckets - 1
	}
	if thi < tlo {
		thi = tlo
	}
	d := len(mi.Channels)
	out := make([][]float64, d)
	for i := range out {
		out[i] = make([]float64, d)
	}
	var count float64
	for k, pair := range mi.pairs {
		e := mi.engines[k]
		q := propolyne.Query{
			Lo:    []int{tlo, 0, 0},
			Hi:    []int{thi, mi.Bins - 1, mi.Bins - 1},
			Polys: []vec.Poly{nil, {0, 1}, {0, 1}},
		}
		if pair[0] == pair[1] {
			// Diagonal: Σ bin², evaluated on the (time, bin_i, bin_i) cube
			// where both value axes carry the same channel.
			q.Polys = []vec.Poly{nil, {0, 0, 1}, nil}
		}
		v, _, err := e.Exact(q)
		if err != nil {
			return nil, 0, err
		}
		out[pair[0]][pair[1]] = v
		out[pair[1]][pair[0]] = v
		if k == 0 {
			n, err := e.Count(propolyne.Box{Lo: q.Lo, Hi: q.Hi})
			if err != nil {
				return nil, 0, err
			}
			count = n
		}
	}
	return out, count, nil
}

// SignatureBetween returns the SVD motion signature of the window — the
// §3.4.1 similarity input, derived without touching raw frames.
func (mi *MotionIndex) SignatureBetween(t0, t1 float64) (svdstream.Signature, error) {
	m, _, err := mi.MomentMatrix(t0, t1)
	if err != nil {
		return svdstream.Signature{}, err
	}
	return svdstream.SignatureFromMoments(m), nil
}

// QuantizeFrames maps raw frames onto the index's bin grid for the indexed
// channels — the ground-truth comparator used by tests and for building
// templates in the same quantised space.
func (mi *MotionIndex) QuantizeFrames(frames [][]float64) [][]float64 {
	out := make([][]float64, len(frames))
	for t, fr := range frames {
		q := make([]float64, len(mi.Channels))
		for k, c := range mi.Channels {
			q[k] = float64(mi.quant[k].Quantize(fr[c]))
		}
		out[t] = q
	}
	return out
}

// NearestSignature returns the best-matching named template for the
// historical window, with its similarity.
func (mi *MotionIndex) NearestSignature(t0, t1 float64, templates map[string]svdstream.Signature, topK int) (string, float64, error) {
	sig, err := mi.SignatureBetween(t0, t1)
	if err != nil {
		return "", 0, err
	}
	best, bestV := "", -1.0
	for name, t := range templates {
		v := svdstream.SimilarityTopK(sig, t, topK)
		if v > bestV || (v == bestV && name < best) {
			best, bestV = name, v
		}
	}
	return best, bestV, nil
}
