package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"aims/internal/stream"
)

func fillStore(t *testing.T, seed int64, frames int) *LiveStore {
	t.Helper()
	ls, err := NewLiveStore([]float64{-2, 0}, []float64{2, 10}, LiveStoreConfig{
		Rate: 100, TimeBuckets: 64, ValueBins: 32, HorizonTicks: frames,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	batch := make([]stream.Frame, frames)
	for i := range batch {
		batch[i] = stream.Frame{
			T:      float64(i) / 100,
			Values: []float64{rng.Float64()*4 - 2, rng.Float64() * 10},
		}
	}
	if n, err := ls.AppendFrames(batch); err != nil || n != frames {
		t.Fatalf("append %d/%d: %v", n, frames, err)
	}
	return ls
}

// TestSummarizeMatchesMoments checks the lock-free Summary path agrees
// with the in-lock moments scan behind CountSamples/AverageValue/
// VarianceValue (up to decode-formula rounding).
func TestSummarizeMatchesMoments(t *testing.T) {
	ls := fillStore(t, 7, 4000)
	for _, span := range [][2]float64{{0, 40}, {3, 9.5}, {12.25, 12.25}, {0, 1e9}} {
		for ch := 0; ch < 2; ch++ {
			s, frames, err := ls.Summarize(ch, span[0], span[1])
			if err != nil {
				t.Fatal(err)
			}
			if frames != 4000 {
				t.Fatalf("watermark %d", frames)
			}
			wantN, err := ls.CountSamples(ch, span[0], span[1])
			if err != nil {
				t.Fatal(err)
			}
			if s.Count() != wantN {
				t.Fatalf("ch %d [%v,%v]: count %v != %v", ch, span[0], span[1], s.Count(), wantN)
			}
			wantAvg, okAvg, _ := ls.AverageValue(ch, span[0], span[1])
			avg, ok := s.Average()
			if ok != okAvg || (ok && math.Abs(avg-wantAvg) > 1e-9*math.Max(1, math.Abs(wantAvg))) {
				t.Fatalf("ch %d [%v,%v]: avg %v/%v != %v/%v", ch, span[0], span[1], avg, ok, wantAvg, okAvg)
			}
			wantVar, okVar, _ := ls.VarianceValue(ch, span[0], span[1])
			v, ok := s.Variance()
			if ok != okVar || (ok && math.Abs(v-wantVar) > 1e-6*math.Max(1, math.Abs(wantVar))) {
				t.Fatalf("ch %d [%v,%v]: var %v/%v != %v/%v", ch, span[0], span[1], v, ok, wantVar, okVar)
			}
		}
	}
	if _, _, err := ls.Summarize(5, 0, 1); err == nil {
		t.Fatal("bad channel accepted")
	}
}

// TestSummaryMergeEqualsWholeRange splits a range in two, merges the two
// summaries, and checks the merge matches summarising the whole range —
// the fleet layer's exact-merge invariant in miniature.
func TestSummaryMergeEqualsWholeRange(t *testing.T) {
	ls := fillStore(t, 11, 4000)
	// Split on a bucket boundary so the two halves partition the samples
	// (timeRange works in whole buckets).
	tpb := float64(ls.TicksPerBucket()) / 100 // seconds per bucket
	mid := 16 * tpb
	whole, _, err := ls.Summarize(0, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := ls.Summarize(0, 0, mid-tpb/2)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := ls.Summarize(0, mid, 40)
	if err != nil {
		t.Fatal(err)
	}
	a.Merge(b)
	if a.N != whole.N {
		t.Fatalf("merged count %v != %v", a.N, whole.N)
	}
	if math.Abs(a.Sum-whole.Sum) > 1e-9*math.Max(1, math.Abs(whole.Sum)) {
		t.Fatalf("merged sum %v != %v", a.Sum, whole.Sum)
	}
}

// TestSummarizeConcurrentWithAppends drives appends and summaries in
// parallel (run under -race): the copied-span path must never observe a
// torn frame, so N can only be one of the batch-boundary counts.
func TestSummarizeConcurrentWithAppends(t *testing.T) {
	ls, err := NewLiveStore([]float64{0}, []float64{1}, LiveStoreConfig{
		Rate: 100, TimeBuckets: 32, ValueBins: 16, HorizonTicks: 100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	const batches, perBatch = 200, 50
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := 0
		for i := 0; i < batches; i++ {
			batch := make([]stream.Frame, perBatch)
			for j := range batch {
				batch[j] = stream.Frame{T: float64(tick) / 100, Values: []float64{0.5}}
				tick++
			}
			ls.AppendFrames(batch)
		}
	}()
	for i := 0; i < 500; i++ {
		s, frames, err := ls.Summarize(0, 0, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		if s.N != float64(frames) {
			t.Fatalf("summary N %v != watermark %d: torn read", s.N, frames)
		}
		if uint64(s.N)%perBatch != 0 {
			t.Fatalf("observed mid-batch count %v", s.N)
		}
	}
	wg.Wait()
}
