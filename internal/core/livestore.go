package core

import (
	"fmt"
	"sync"
	"time"

	"aims/internal/compress"
	"aims/internal/propolyne"
	"aims/internal/stream"
)

// LiveStore is the middle tier's ingest-side store: the quantised
// (channel, time-bucket, value-bin) count cube of an in-progress session,
// kept in a form cheap enough to update per frame at device rate —
// O(channels) integer increments — while staying queryable.
//
// Exact COUNT/AVERAGE/VARIANCE range aggregates are answered by direct
// scans of the count cube (the cube *is* the exact frequency distribution,
// so no transform is needed for exactness). Approximate and progressive
// answers go through Seal, which materialises the cube as a full
// wavelet-transformed ProPolyne Store. The sealed engine is cached and —
// because the wavelet transform of a point mass is sparse (§3.1.1) —
// brought up to date incrementally: appends since the last seal are
// recorded in a compact delta log and replayed through the engine's
// batched sparse append, so the live-query hot path costs O(delta), not
// O(cube). A full rebuild happens only on the first seal and when the
// delta log overflows its threshold.
//
// Concurrency: one RWMutex guards the cube, the delta log and the seal
// cache fields. AppendFrame takes the write lock for the whole frame, so
// a query never observes half a frame; query scans take the read lock.
// Safe for one or more appenders and any number of concurrent readers.
type LiveStore struct {
	cfg        LiveStoreConfig
	quant      []compress.Quantizer
	deltaLimit int // max delta-log entries; 0 disables incremental sealing

	mu      sync.RWMutex
	cube    []uint32 // channels × TimeBuckets × ValueBins counts
	frames  int
	version uint64
	// delta logs the flat cube indices incremented since the last full
	// seal snapshot; track gates logging (it starts at the first seal so
	// an unqueried session never pays for it) and overflow marks a log
	// that outgrew deltaLimit and was dropped.
	delta    []uint32
	track    bool
	overflow bool

	sealMu        sync.Mutex
	sealed        *Store
	sealedVersion uint64
}

// LiveStoreConfig shapes a live session store.
type LiveStoreConfig struct {
	// Rate is the device clock in Hz (default 100).
	Rate float64
	// TimeBuckets and ValueBins must be powers of two (defaults 256, 64 —
	// smaller than the off-line Store defaults because a live store exists
	// per session).
	TimeBuckets int
	ValueBins   int
	// HorizonTicks is the expected session length in device ticks; frames
	// beyond it clamp into the final bucket (default 60 s of Rate).
	HorizonTicks int
	// MaxDegree is the highest polynomial degree the sealed engine must
	// answer (default 2).
	MaxDegree int
	// SealDeltaThreshold caps the delta log driving the incremental seal,
	// in per-channel cell increments. Past it the next Seal falls back to
	// a full rebuild (incremental replay would cost more than the
	// transform). 0 derives a default of cube-cells/16 (min 1024);
	// negative disables incremental sealing entirely, so every Seal after
	// an append rebuilds from scratch.
	SealDeltaThreshold int
	// SealObserver, when non-nil, receives every materialising Seal's wall
	// time, whether it took the incremental delta-replay path, and the
	// delta-log entries replayed (0 on rebuilds). Cache hits — a Seal with
	// no appends since the last — are not reported. The middle tier hooks
	// this into its stage-level metrics.
	SealObserver func(d time.Duration, incremental bool, deltaEntries int)
}

func (c LiveStoreConfig) withDefaults() LiveStoreConfig {
	if c.Rate <= 0 {
		c.Rate = 100
	}
	if c.TimeBuckets <= 0 {
		c.TimeBuckets = 256
	}
	if c.ValueBins <= 0 {
		c.ValueBins = 64
	}
	if c.HorizonTicks <= 0 {
		c.HorizonTicks = int(60 * c.Rate)
	}
	if c.MaxDegree <= 0 {
		c.MaxDegree = 2
	}
	return c
}

// NewLiveStore creates an empty live store for a session whose channel c
// produces values in [mins[c], maxs[c]] (the registration-time device
// spec; out-of-range values clamp into the edge bins).
func NewLiveStore(mins, maxs []float64, cfg LiveStoreConfig) (*LiveStore, error) {
	if len(mins) == 0 || len(mins) != len(maxs) {
		return nil, fmt.Errorf("core: live store needs matching per-channel ranges, got %d/%d", len(mins), len(maxs))
	}
	cfg = cfg.withDefaults()
	for _, n := range []int{cfg.TimeBuckets, cfg.ValueBins} {
		if n&(n-1) != 0 {
			return nil, fmt.Errorf("core: live store dims must be powers of two, got %d", n)
		}
	}
	bits := log2(cfg.ValueBins)
	quant := make([]compress.Quantizer, len(mins))
	for c := range quant {
		quant[c] = compress.NewQuantizer(mins[c], maxs[c], bits)
	}
	ls := &LiveStore{
		cfg:   cfg,
		quant: quant,
		cube:  make([]uint32, len(mins)*cfg.TimeBuckets*cfg.ValueBins),
	}
	switch {
	case cfg.SealDeltaThreshold > 0:
		ls.deltaLimit = cfg.SealDeltaThreshold
	case cfg.SealDeltaThreshold == 0:
		ls.deltaLimit = len(ls.cube) / 16
		if ls.deltaLimit < 1024 {
			ls.deltaLimit = 1024
		}
	default: // negative: incremental sealing disabled
		ls.deltaLimit = 0
	}
	return ls, nil
}

// Channels returns the channel count.
func (ls *LiveStore) Channels() int { return len(ls.quant) }

// Config returns the effective configuration.
func (ls *LiveStore) Config() LiveStoreConfig { return ls.cfg }

// TicksPerBucket returns the time-bucket width in device ticks.
func (ls *LiveStore) TicksPerBucket() int {
	tpb := (ls.cfg.HorizonTicks + ls.cfg.TimeBuckets - 1) / ls.cfg.TimeBuckets
	if tpb < 1 {
		tpb = 1
	}
	return tpb
}

// Frames returns how many frames have been appended.
func (ls *LiveStore) Frames() int {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	return ls.frames
}

// Version increments on every append; Seal caches by it.
func (ls *LiveStore) Version() uint64 {
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	return ls.version
}

// AppendFrame ingests one frame at the given absolute device tick:
// one quantise + increment per channel, under the write lock so the frame
// becomes visible to queries atomically.
func (ls *LiveStore) AppendFrame(tick int, frame []float64) error {
	if len(frame) != len(ls.quant) {
		return fmt.Errorf("core: frame width %d != %d channels", len(frame), len(ls.quant))
	}
	if tick < 0 {
		return fmt.Errorf("core: negative tick %d", tick)
	}
	tb := tick / ls.TicksPerBucket()
	if tb >= ls.cfg.TimeBuckets {
		tb = ls.cfg.TimeBuckets - 1
	}
	vb := ls.cfg.ValueBins
	ls.mu.Lock()
	for c, v := range frame {
		bin := ls.quant[c].Quantize(v)
		idx := (c*ls.cfg.TimeBuckets+tb)*vb + bin
		ls.cube[idx]++
		ls.recordDelta(idx)
	}
	ls.frames++
	ls.version++
	ls.mu.Unlock()
	return nil
}

// recordDelta logs one cube-cell increment for the incremental seal.
// Callers must hold ls.mu for writing.
func (ls *LiveStore) recordDelta(idx int) {
	if !ls.track || ls.overflow {
		return
	}
	if len(ls.delta) >= ls.deltaLimit {
		// Past the threshold an incremental replay would cost more than a
		// transform; drop the log and let the next Seal rebuild.
		ls.overflow = true
		ls.delta = nil
		return
	}
	ls.delta = append(ls.delta, uint32(idx))
}

// AppendFrames ingests a batch of stream frames under a single write-lock
// acquisition (the server's ingest path appends whole double-buffered
// batches), deriving each frame's tick from its timestamp and the device
// rate. Frames that fail validation — wrong width, negative tick — are
// skipped rather than aborting the batch. It returns how many frames were
// stored; err reports the first skip reason and is nil when all landed.
func (ls *LiveStore) AppendFrames(frames []stream.Frame) (int, error) {
	tpb := ls.TicksPerBucket()
	tbuckets := ls.cfg.TimeBuckets
	vb := ls.cfg.ValueBins
	stored := 0
	var firstErr error
	ls.mu.Lock()
	for i := range frames {
		if len(frames[i].Values) != len(ls.quant) {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: frame width %d != %d channels", len(frames[i].Values), len(ls.quant))
			}
			continue
		}
		tick := int(frames[i].T*ls.cfg.Rate + 0.5)
		if tick < 0 {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: negative tick %d", tick)
			}
			continue
		}
		tb := tick / tpb
		if tb >= tbuckets {
			tb = tbuckets - 1
		}
		for c, v := range frames[i].Values {
			bin := ls.quant[c].Quantize(v)
			idx := (c*tbuckets+tb)*vb + bin
			ls.cube[idx]++
			ls.recordDelta(idx)
		}
		ls.frames++
		ls.version++
		stored++
	}
	ls.mu.Unlock()
	return stored, firstErr
}

// timeRange converts seconds to clamped bucket indices (mirrors
// Store.timeRange).
func (ls *LiveStore) timeRange(t0, t1 float64) (int, int) {
	tpb := float64(ls.TicksPerBucket())
	lo := int(t0 * ls.cfg.Rate / tpb)
	hi := int(t1 * ls.cfg.Rate / tpb)
	if lo < 0 {
		lo = 0
	}
	if hi >= ls.cfg.TimeBuckets {
		hi = ls.cfg.TimeBuckets - 1
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

func (ls *LiveStore) checkChannel(channel int) error {
	if channel < 0 || channel >= len(ls.quant) {
		return fmt.Errorf("core: channel %d out of [0,%d)", channel, len(ls.quant))
	}
	return nil
}

// moments scans the cube for Σ1, Σbin, Σbin² of one channel over a time
// range — enough for COUNT, AVERAGE and VARIANCE.
func (ls *LiveStore) moments(channel int, t0, t1 float64) (n, sum, sumSq float64, err error) {
	if err := ls.checkChannel(channel); err != nil {
		return 0, 0, 0, err
	}
	lo, hi := ls.timeRange(t0, t1)
	vb := ls.cfg.ValueBins
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	for tb := lo; tb <= hi; tb++ {
		row := ls.cube[(channel*ls.cfg.TimeBuckets+tb)*vb : (channel*ls.cfg.TimeBuckets+tb+1)*vb]
		for bin, cnt := range row {
			if cnt == 0 {
				continue
			}
			fc := float64(cnt)
			fb := float64(bin)
			n += fc
			sum += fc * fb
			sumSq += fc * fb * fb
		}
	}
	return n, sum, sumSq, nil
}

// CountSamples returns exactly how many samples channel recorded in
// [t0, t1] seconds.
func (ls *LiveStore) CountSamples(channel int, t0, t1 float64) (float64, error) {
	n, _, _, err := ls.moments(channel, t0, t1)
	return n, err
}

// AverageValue returns the exact mean sensor value of a channel over
// [t0, t1] seconds, decoded through the channel's quantiser. ok=false on
// an empty range.
func (ls *LiveStore) AverageValue(channel int, t0, t1 float64) (float64, bool, error) {
	n, sum, _, err := ls.moments(channel, t0, t1)
	if err != nil || n == 0 {
		return 0, false, err
	}
	q := ls.quant[channel]
	return q.Min + sum/n*q.Step(), true, nil
}

// VarianceValue returns the exact population variance of a channel's value
// over [t0, t1] seconds, in value units.
func (ls *LiveStore) VarianceValue(channel int, t0, t1 float64) (float64, bool, error) {
	n, sum, sumSq, err := ls.moments(channel, t0, t1)
	if err != nil || n == 0 {
		return 0, false, err
	}
	mean := sum / n
	step := ls.quant[channel].Step()
	return (sumSq/n - mean*mean) * step * step, true, nil
}

// Seal materialises the count cube as a full wavelet-transformed ProPolyne
// Store (the paper's off-line query subsystem) for approximate and
// progressive evaluation. The sealed store is cached; when appends have
// advanced the version, Seal replays the delta log through the engine's
// batched sparse append — O(delta since last seal) — instead of
// retransforming the cube, falling back to a full rebuild on the first
// seal, after a delta-log overflow, or when incremental sealing is
// disabled. Because the cached engine is updated in place, a *Store
// returned by an earlier Seal observes later seals' data too (its engine
// lock keeps each batch atomic). Appends are paused only for the brief
// cube snapshot / log hand-off; transform and replay run outside the
// cube lock.
func (ls *LiveStore) Seal() (*Store, error) {
	ls.sealMu.Lock()
	defer ls.sealMu.Unlock()

	t0 := time.Now()
	ls.mu.Lock()
	version := ls.version
	if ls.sealed != nil && ls.sealedVersion == version {
		st := ls.sealed
		ls.mu.Unlock()
		return st, nil
	}
	if ls.sealed != nil && ls.track && !ls.overflow {
		// Incremental path: steal the delta log; appends from here on
		// accumulate a fresh log for the next seal.
		log := ls.delta
		ls.delta = nil
		ls.mu.Unlock()
		if err := ls.replayDelta(log); err != nil {
			ls.mu.Lock()
			ls.overflow = true // engine state unknown: force a rebuild next
			ls.mu.Unlock()
			return nil, err
		}
		ls.mu.Lock()
		ls.sealedVersion = version
		st := ls.sealed
		ls.mu.Unlock()
		if ls.cfg.SealObserver != nil {
			ls.cfg.SealObserver(time.Since(t0), true, len(log))
		}
		return st, nil
	}
	// Full rebuild: snapshot the cube and restart delta tracking from the
	// snapshot point.
	channels := len(ls.quant)
	chDim := nextPow2(channels)
	tb, vb := ls.cfg.TimeBuckets, ls.cfg.ValueBins
	cube := make([]float64, chDim*tb*vb)
	for i, v := range ls.cube {
		cube[i] = float64(v)
	}
	if ls.deltaLimit > 0 {
		ls.track = true
		ls.overflow = false
		ls.delta = ls.delta[:0]
	}
	ls.mu.Unlock()

	dims := []int{chDim, tb, vb}
	bases, err := propolyne.ChooseBases(dims, propolyne.QueryTemplate{
		RangeFraction: []float64{1 / float64(chDim), 0.25, 1},
		MaxDegree:     ls.cfg.MaxDegree,
	}, propolyne.DefaultCostModel)
	if err != nil {
		return nil, err
	}
	eng, err := propolyne.NewWithBases(cube, dims, bases)
	if err != nil {
		return nil, err
	}
	st := &Store{
		Engine:         eng,
		Channels:       channels,
		TimeBuckets:    tb,
		ValueBins:      vb,
		TicksPerBucket: ls.TicksPerBucket(),
		Rate:           ls.cfg.Rate,
		quant:          append([]compress.Quantizer(nil), ls.quant...),
	}
	ls.mu.Lock()
	ls.sealed = st
	ls.sealedVersion = version
	ls.mu.Unlock()
	if ls.cfg.SealObserver != nil {
		ls.cfg.SealObserver(time.Since(t0), false, 0)
	}
	return st, nil
}

// replayDelta groups the logged cube-cell increments by cell and applies
// them to the cached sealed engine as one batched sparse append. Callers
// hold sealMu, which is what protects ls.sealed here.
func (ls *LiveStore) replayDelta(log []uint32) error {
	if len(log) == 0 {
		return nil
	}
	eng := ls.sealed.Engine
	vb := ls.cfg.ValueBins
	chStride := ls.cfg.TimeBuckets * vb
	var tuples []propolyne.Tuple
	if eng.HasWaveletDims() {
		// Each distinct cell costs a sparse tensor-product scatter, so
		// collapse duplicate increments into one weighted tuple first.
		counts := make(map[uint32]float64, len(log))
		for _, idx := range log {
			counts[idx]++
		}
		tuples = make([]propolyne.Tuple, 0, len(counts))
		idxs := make([]int, 3*len(counts))
		for idx, w := range counts {
			i := int(idx)
			rem := i % chStride
			ix := idxs[:3:3]
			idxs = idxs[3:]
			ix[0], ix[1], ix[2] = i/chStride, rem/vb, rem%vb
			tuples = append(tuples, propolyne.Tuple{Index: ix, Weight: w})
		}
	} else {
		// Pure-relational engine: every increment lands on exactly one
		// coefficient, so dedup would cost more than it saves — stream the
		// raw log as unit-weight tuples.
		tuples = make([]propolyne.Tuple, len(log))
		idxs := make([]int, 3*len(log))
		for k, idx := range log {
			i := int(idx)
			rem := i % chStride
			ix := idxs[:3:3]
			idxs = idxs[3:]
			ix[0], ix[1], ix[2] = i/chStride, rem/vb, rem%vb
			tuples[k] = propolyne.Tuple{Index: ix, Weight: 1}
		}
	}
	return eng.AppendBatch(tuples)
}

// QueryTrace reports what one traced store evaluation cost, layer by
// layer: the seal that brought the transformed engine up to date, whether
// the wavelet plan path ran (exact scans never compile a plan), the plan
// provenance from propolyne, and the queried box volume in cube cells.
// The middle tier reconstructs trace spans from these durations, so core
// never imports the obs package.
type QueryTrace struct {
	SealNS    int64
	PlanUsed  bool
	Plan      propolyne.PlanTrace
	BoxVolume int64
}

// ApproximateCount returns a budget-limited estimate of CountSamples with
// its guaranteed error bound, evaluated on the sealed engine.
func (ls *LiveStore) ApproximateCount(channel int, t0, t1 float64, budget int) (est, bound float64, err error) {
	return ls.ApproximateCountTraced(channel, t0, t1, budget, nil)
}

// ApproximateCountTraced is ApproximateCount with per-call provenance
// recorded into a non-nil qt (seal time, plan outcome, box volume).
func (ls *LiveStore) ApproximateCountTraced(channel int, t0, t1 float64, budget int, qt *QueryTrace) (est, bound float64, err error) {
	begin := time.Now()
	st, err := ls.Seal()
	if qt != nil {
		qt.SealNS = time.Since(begin).Nanoseconds()
	}
	if err != nil {
		return 0, 0, err
	}
	return st.ApproximateCountTraced(channel, t0, t1, budget, qt)
}

// ProgressiveCount evaluates CountSamples progressively on the sealed
// engine: at most maxSteps checkpoints of (estimate, guaranteed bound),
// the last one exact.
func (ls *LiveStore) ProgressiveCount(channel int, t0, t1 float64, maxSteps int) ([]propolyne.Step, error) {
	return ls.ProgressiveCountTraced(channel, t0, t1, maxSteps, nil)
}

// ProgressiveCountTraced is ProgressiveCount with per-call provenance
// recorded into a non-nil qt.
func (ls *LiveStore) ProgressiveCountTraced(channel int, t0, t1 float64, maxSteps int, qt *QueryTrace) ([]propolyne.Step, error) {
	begin := time.Now()
	st, err := ls.Seal()
	if qt != nil {
		qt.SealNS = time.Since(begin).Nanoseconds()
	}
	if err != nil {
		return nil, err
	}
	b, err := st.box(channel, t0, t1)
	if err != nil {
		return nil, err
	}
	var pt *propolyne.PlanTrace
	if qt != nil {
		qt.PlanUsed = true
		qt.BoxVolume = boxVolume(b)
		pt = &qt.Plan
	}
	steps, _, err := st.Engine.ProgressiveTraced(propolyne.Query{Lo: b.Lo, Hi: b.Hi}, maxSteps, pt)
	return steps, err
}

// BoxVolume returns the number of cube cells a [t0, t1] range query over
// channel spans — time buckets × value bins, the size driver of an exact
// scan. Stamped into slow-query records for quick "why was this slow".
func (ls *LiveStore) BoxVolume(channel int, t0, t1 float64) (int64, error) {
	if err := ls.checkChannel(channel); err != nil {
		return 0, err
	}
	lo, hi := ls.timeRange(t0, t1)
	return int64(hi-lo+1) * int64(ls.cfg.ValueBins), nil
}
