package core

// Summary is the mergeable partial aggregate of one channel over one time
// range: sample count and the first two moments of the *decoded* sensor
// value (Σv, Σv² in value units, not bin units). Because it lives in value
// units it merges across sessions whose quantisers differ — two gloves
// registered with different per-channel ranges still combine exactly —
// which is what the fleet layer needs: COUNT is ΣN, AVERAGE the weighted
// merge Sum/N, VARIANCE derives from the merged moments.
type Summary struct {
	N     float64 // samples in range
	Sum   float64 // Σ decoded value
	SumSq float64 // Σ decoded value²
}

// Merge folds another summary in. Merging is commutative and associative
// up to float rounding; callers that need bit-reproducible fleet answers
// merge in a deterministic (ascending session ID) order.
func (s *Summary) Merge(o Summary) {
	s.N += o.N
	s.Sum += o.Sum
	s.SumSq += o.SumSq
}

// Count returns the sample count.
func (s Summary) Count() float64 { return s.N }

// Average returns the mean decoded value; ok=false on an empty summary.
func (s Summary) Average() (float64, bool) {
	if s.N == 0 {
		return 0, false
	}
	return s.Sum / s.N, true
}

// Variance returns the population variance of the decoded value; ok=false
// on an empty summary.
func (s Summary) Variance() (float64, bool) {
	if s.N == 0 {
		return 0, false
	}
	mean := s.Sum / s.N
	return s.SumSq/s.N - mean*mean, true
}

// Summarize computes the channel's Summary over [t0, t1] seconds together
// with the store's frame high-water mark at scan time.
//
// This is the fleet layer's read-only evaluation path: the row span is
// copied out under a brief read lock — O(buckets × bins) memcpy, no
// arithmetic — and the moment scan runs on the copy, outside any lock. A
// fleet fan-out over thousands of sessions therefore never holds a store
// lock for the duration of the math, so ingest appends interleave with
// fleet scans instead of serialising behind them; and because the copy is
// atomic under the lock, the summary covers exactly the first `frames`
// frames (the watermark reported back in the fleet result).
func (ls *LiveStore) Summarize(channel int, t0, t1 float64) (Summary, uint64, error) {
	if err := ls.checkChannel(channel); err != nil {
		return Summary{}, 0, err
	}
	lo, hi := ls.timeRange(t0, t1)
	vb := ls.cfg.ValueBins
	span := make([]uint32, (hi-lo+1)*vb)
	ls.mu.RLock()
	frames := uint64(ls.frames)
	copy(span, ls.cube[(channel*ls.cfg.TimeBuckets+lo)*vb:(channel*ls.cfg.TimeBuckets+hi+1)*vb])
	ls.mu.RUnlock()

	var n, sum, sumSq float64
	for i, cnt := range span {
		if cnt == 0 {
			continue
		}
		fc := float64(cnt)
		fb := float64(i % vb)
		n += fc
		sum += fc * fb
		sumSq += fc * fb * fb
	}
	q := ls.quant[channel]
	min, step := q.Min, q.Step()
	// Decode bin-unit moments into value units:
	//   Σv  = N·min + step·Σb
	//   Σv² = N·min² + 2·min·step·Σb + step²·Σb²
	return Summary{
		N:     n,
		Sum:   n*min + step*sum,
		SumSq: n*min*min + 2*min*step*sum + step*step*sumSq,
	}, frames, nil
}
