package core

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"aims/internal/svdstream"
	"aims/internal/synth"
)

var motionFix struct {
	frames [][]float64
	segs   []synth.Segment
	mi     *MotionIndex
	vocab  []synth.Sign
	err    error
	once   sync.Once
}

// motionFixture builds one shared, deliberately small index: 4 channels
// (10 pair cubes) over a ~8-sign stream with one tick per time bucket so
// the exact-match tests have no bucketing slack.
func motionFixture(t *testing.T) ([][]float64, []synth.Segment, *MotionIndex, []synth.Sign) {
	t.Helper()
	motionFix.once.Do(func() {
		motionFix.vocab = synth.Vocabulary(5, 601)
		motionFix.frames, motionFix.segs = synth.SignStream(motionFix.vocab, synth.StreamOptions{
			Count: 8, Noise: 0.3, DurJitter: 0.25, GapTicks: 40, Seed: 602,
		})
		motionFix.mi, motionFix.err = NewMotionIndex(motionFix.frames, MotionIndexConfig{
			Channels:    []int{0, 1, 2, 3},
			TimeBuckets: 1 << log2up(len(motionFix.frames)),
			Bins:        32,
		})
	})
	if motionFix.err != nil {
		t.Fatal(motionFix.err)
	}
	return motionFix.frames, motionFix.segs, motionFix.mi, motionFix.vocab
}

func log2up(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

func TestNewMotionIndexValidation(t *testing.T) {
	if _, err := NewMotionIndex(nil, MotionIndexConfig{Channels: []int{0}}); err == nil {
		t.Fatal("empty frames accepted")
	}
	frames := [][]float64{{1, 2}}
	if _, err := NewMotionIndex(frames, MotionIndexConfig{}); err == nil {
		t.Fatal("no channels accepted")
	}
	if _, err := NewMotionIndex(frames, MotionIndexConfig{Channels: []int{7}}); err == nil {
		t.Fatal("out-of-range channel accepted")
	}
}

func TestMotionIndexMomentMatrixMatchesDirect(t *testing.T) {
	frames, _, mi, _ := motionFixture(t)
	// With TimeBuckets ≥ len(frames) every tick has its own bucket, so the
	// index must reproduce the direct quantised computation exactly.
	if mi.ticksPerBucket != 1 {
		t.Fatalf("fixture should give 1 tick/bucket, got %d", mi.ticksPerBucket)
	}
	t0, t1 := 1.0, 4.0
	got, count, err := mi.MomentMatrix(t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	lo := int(t0 * mi.Rate)
	hi := int(t1 * mi.Rate)
	want := svdstream.MomentMatrix(mi.QuantizeFrames(frames[lo : hi+1]))
	if math.Abs(count-float64(hi-lo+1)) > 1e-6 {
		t.Fatalf("count = %v, want %d", count, hi-lo+1)
	}
	for i := range want {
		for j := range want {
			if math.Abs(got[i][j]-want[i][j]) > 1e-4*(1+math.Abs(want[i][j])) {
				t.Fatalf("moment[%d][%d] = %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestMotionIndexSignatureMatchesDirect(t *testing.T) {
	frames, segs, mi, _ := motionFixture(t)
	seg := segs[3]
	t0 := float64(seg.Start) / mi.Rate
	t1 := float64(seg.End-1) / mi.Rate
	viaIndex, err := mi.SignatureBetween(t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	direct := svdstream.SignatureFromMoments(
		svdstream.MomentMatrix(mi.QuantizeFrames(frames[seg.Start:seg.End])))
	if sim := svdstream.Similarity(viaIndex, direct); sim < 1-1e-6 {
		t.Fatalf("index-derived signature similarity %v, want 1", sim)
	}
}

func TestMotionIndexAppendMatchesBatch(t *testing.T) {
	// Noise-free sinusoids whose full range appears within the first 200
	// frames, so the prefix-built quantisers match the batch-built ones
	// exactly and the comparison isolates the append path.
	frames := make([][]float64, 256)
	for i := range frames {
		fr := make([]float64, 4)
		for d := range fr {
			fr[d] = math.Sin(2*math.Pi*float64(i)/100 + float64(d))
		}
		frames[i] = fr
	}
	cfg := MotionIndexConfig{Channels: []int{0, 1, 2, 3}, TimeBuckets: 256, Bins: 16}
	batch, err := NewMotionIndex(frames, cfg)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewMotionIndex(frames[:200], cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The incremental index was built over fewer frames, so its quantisers
	// saw a narrower range — rebuild over the same prefix but with frames
	// from the full range to keep quantisers identical: instead, append
	// the tail and compare windows inside the shared prefix range.
	for i := 200; i < 256; i++ {
		if err := inc.AppendFrame(i, frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.AppendFrame(0, []float64{1}); err == nil {
		t.Fatal("short frame accepted")
	}
	// Moment matrices over the appended region must match the batch index
	// up to quantiser differences; with sinusoidal data the first 200
	// frames span the full range, so the quantisers coincide.
	mBatch, nBatch, err := batch.MomentMatrix(2.1, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	mInc, nInc, err := inc.MomentMatrix(2.1, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nBatch-nInc) > 1e-6 {
		t.Fatalf("counts %v vs %v", nBatch, nInc)
	}
	for i := range mBatch {
		for j := range mBatch {
			if math.Abs(mBatch[i][j]-mInc[i][j]) > 1e-4*(1+math.Abs(mBatch[i][j])) {
				t.Fatalf("moment[%d][%d]: %v vs %v", i, j, mBatch[i][j], mInc[i][j])
			}
		}
	}
}

func TestMotionIndexHistoricalRecognition(t *testing.T) {
	frames, segs, mi, vocab := motionFixture(t)
	_ = frames
	// Templates in the index's quantised space.
	rng := rand.New(rand.NewSource(603))
	templates := map[string]svdstream.Signature{}
	for _, s := range vocab {
		var agg [][]float64
		for k := 0; k < 3; k++ {
			exec := s.Render(0.8+0.2*float64(k), 0.1, rng)
			m := svdstream.MomentMatrix(mi.QuantizeFrames(exec))
			if agg == nil {
				agg = m
			} else {
				for i := range m {
					for j := range m[i] {
						agg[i][j] += m[i][j]
					}
				}
			}
		}
		templates[s.Name] = svdstream.SignatureFromMoments(agg)
	}
	correct := 0
	for _, seg := range segs {
		name, sim, err := mi.NearestSignature(
			float64(seg.Start)/mi.Rate, float64(seg.End-1)/mi.Rate, templates, 4)
		if err != nil {
			t.Fatal(err)
		}
		if name == seg.Name {
			correct++
		}
		if sim <= 0 || sim > 1+1e-9 {
			t.Fatalf("similarity %v out of range", sim)
		}
	}
	if correct*10 < len(segs)*8 {
		t.Fatalf("historical recognition %d/%d", correct, len(segs))
	}
}
