// Package core assembles the four AIMS subsystems into the integrated
// system of the paper's Fig. 1: acquisition (double-buffered capture +
// Nyquist-based sampling + per-dimension basis selection), storage (the
// quantised immersidata cube, wavelet-transformed per dimension), off-line
// query and analysis (ProPolyne range aggregates), and online query and
// analysis (weighted-sum-SVD stream recognition). It is the public façade
// the examples and command-line tools build on.
package core

import (
	"fmt"
	"math"
	"sync"

	"aims/internal/compress"
	"aims/internal/propolyne"
	"aims/internal/stream"
	"aims/internal/svdstream"
	"aims/internal/vec"
)

// Config shapes an AIMS instance.
type Config struct {
	// DeviceRate is the sensor clock in Hz (default 100, the CyberGlove
	// clock of §2.2).
	DeviceRate float64
	// TimeBuckets is the time resolution of the immersidata cube (power of
	// two, default 512).
	TimeBuckets int
	// ValueBins is the per-channel value quantisation (power of two,
	// default 128).
	ValueBins int
	// MaxDegree is the highest polynomial degree the ProPolyne store must
	// answer (default 2: VARIANCE and COVARIANCE work).
	MaxDegree int
	// AcquireBuffer is the double-buffering batch size in frames
	// (default 256).
	AcquireBuffer int
}

func (c Config) withDefaults() Config {
	if c.DeviceRate <= 0 {
		c.DeviceRate = 100
	}
	if c.TimeBuckets <= 0 {
		c.TimeBuckets = 512
	}
	if c.ValueBins <= 0 {
		c.ValueBins = 128
	}
	if c.MaxDegree <= 0 {
		c.MaxDegree = 2
	}
	if c.AcquireBuffer <= 0 {
		c.AcquireBuffer = 256
	}
	return c
}

// System is one AIMS instance.
type System struct {
	cfg Config
}

// New creates a system with the given configuration.
func New(cfg Config) *System {
	return &System{cfg: cfg.withDefaults()}
}

// Config returns the effective configuration.
func (s *System) Config() Config { return s.cfg }

// Acquire drives the double-buffered acquisition pipeline over a frame
// source and returns the captured time-major frames plus pipeline stats.
func (s *System) Acquire(src stream.Source) ([][]float64, stream.AcquireStats) {
	var frames [][]float64
	stats := stream.Acquire(src, s.cfg.AcquireBuffer, func(batch []stream.Frame) {
		for _, f := range batch {
			frames = append(frames, f.Values)
		}
	})
	return frames, stats
}

// Store is a populated immersidata store: the quantised
// (channel, time-bucket, value-bin) cube behind a ProPolyne engine.
// Channel and time are standard dimensions when the hybrid chooser says
// so; the value dimension is wavelet-transformed so polynomial measures
// evaluate sparsely.
//
// Concurrency contract (the server's live-session path depends on it):
// all mutation goes through AppendFrame, which holds the store's write
// lock for the whole frame, so a concurrent query never observes a frame
// with only some of its channels appended. Query methods and WriteTo take
// the read lock and may run concurrently with each other and with the
// engine's own internal synchronisation. Code that reaches into
// Engine.Coeffs directly (tests, the block-store builder) is only safe
// when no AppendFrame is in flight.
type Store struct {
	Engine *propolyne.Engine

	Channels       int
	TimeBuckets    int
	ValueBins      int
	TicksPerBucket int
	Rate           float64

	// mu makes AppendFrame atomic with respect to queries: the engine
	// synchronises individual Append calls, but one frame is Channels
	// appends and must become visible as a unit.
	mu sync.RWMutex

	quant []compress.Quantizer // per channel
}

// BuildStore quantises a time-major frame recording into the immersidata
// schema and populates the ProPolyne engine over it.
func (s *System) BuildStore(frames [][]float64) (*Store, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("core: no frames to store")
	}
	channels := len(frames[0])
	chDim := nextPow2(channels)
	cfg := s.cfg

	ticksPerBucket := (len(frames) + cfg.TimeBuckets - 1) / cfg.TimeBuckets
	if ticksPerBucket < 1 {
		ticksPerBucket = 1
	}

	// Per-channel quantisers over the observed range.
	bits := log2(cfg.ValueBins)
	quant := make([]compress.Quantizer, channels)
	for c := 0; c < channels; c++ {
		col := make([]float64, len(frames))
		for i := range frames {
			col[i] = frames[i][c]
		}
		quant[c] = compress.QuantizerFor(col, bits)
	}

	dims := []int{chDim, cfg.TimeBuckets, cfg.ValueBins}
	cube := make([]float64, chDim*cfg.TimeBuckets*cfg.ValueBins)
	for t, fr := range frames {
		tb := t / ticksPerBucket
		if tb >= cfg.TimeBuckets {
			tb = cfg.TimeBuckets - 1
		}
		for c, v := range fr {
			bin := quant[c].Quantize(v)
			cube[(c*cfg.TimeBuckets+tb)*cfg.ValueBins+bin]++
		}
	}

	// Basis per dimension via the hybrid cost model: channel queries are
	// usually single-channel (tiny fraction), time ranges moderate, value
	// scans full-domain.
	bases, err := propolyne.ChooseBases(dims, propolyne.QueryTemplate{
		RangeFraction: []float64{1 / float64(chDim), 0.25, 1},
		MaxDegree:     cfg.MaxDegree,
	}, propolyne.DefaultCostModel)
	if err != nil {
		return nil, err
	}
	eng, err := propolyne.NewWithBases(cube, dims, bases)
	if err != nil {
		return nil, err
	}
	return &Store{
		Engine:         eng,
		Channels:       channels,
		TimeBuckets:    cfg.TimeBuckets,
		ValueBins:      cfg.ValueBins,
		TicksPerBucket: ticksPerBucket,
		Rate:           cfg.DeviceRate,
		quant:          quant,
	}, nil
}

// timeRange converts seconds to bucket indices, clamped to the store.
func (st *Store) timeRange(t0, t1 float64) (int, int) {
	lo := int(t0 * st.Rate / float64(st.TicksPerBucket))
	hi := int(t1 * st.Rate / float64(st.TicksPerBucket))
	if lo < 0 {
		lo = 0
	}
	if hi >= st.TimeBuckets {
		hi = st.TimeBuckets - 1
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

func (st *Store) box(channel int, t0, t1 float64) (propolyne.Box, error) {
	if channel < 0 || channel >= st.Channels {
		return propolyne.Box{}, fmt.Errorf("core: channel %d out of [0,%d)", channel, st.Channels)
	}
	tlo, thi := st.timeRange(t0, t1)
	return propolyne.Box{
		Lo: []int{channel, tlo, 0},
		Hi: []int{channel, thi, st.ValueBins - 1},
	}, nil
}

// CountSamples returns how many samples channel recorded in [t0, t1]
// seconds.
func (st *Store) CountSamples(channel int, t0, t1 float64) (float64, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	b, err := st.box(channel, t0, t1)
	if err != nil {
		return 0, err
	}
	return st.Engine.Count(b)
}

// AverageValue returns the mean sensor value of a channel over [t0, t1]
// seconds, decoded through the channel's quantiser.
func (st *Store) AverageValue(channel int, t0, t1 float64) (float64, bool, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	b, err := st.box(channel, t0, t1)
	if err != nil {
		return 0, false, err
	}
	avgBin, ok, err := st.Engine.Average(b, 2)
	if err != nil || !ok {
		return 0, ok, err
	}
	q := st.quant[channel]
	return q.Min + avgBin*q.Step(), true, nil
}

// VarianceValue returns the population variance of a channel's value over
// [t0, t1] seconds, in value units.
func (st *Store) VarianceValue(channel int, t0, t1 float64) (float64, bool, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	b, err := st.box(channel, t0, t1)
	if err != nil {
		return 0, false, err
	}
	vBin, ok, err := st.Engine.Variance(b, 2)
	if err != nil || !ok {
		return 0, ok, err
	}
	step := st.quant[channel].Step()
	return vBin * step * step, true, nil
}

// ApproximateCount returns a progressive estimate of CountSamples using at
// most budget transformed-domain coefficients, with its guaranteed error
// bound.
func (st *Store) ApproximateCount(channel int, t0, t1 float64, budget int) (est, bound float64, err error) {
	return st.ApproximateCountTraced(channel, t0, t1, budget, nil)
}

// ApproximateCountTraced is ApproximateCount with per-call provenance: a
// non-nil qt records the queried box volume and the plan-layer trace.
func (st *Store) ApproximateCountTraced(channel int, t0, t1 float64, budget int, qt *QueryTrace) (est, bound float64, err error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	b, err := st.box(channel, t0, t1)
	if err != nil {
		return 0, 0, err
	}
	if qt == nil {
		return st.Engine.EstimateWithBudget(propolyne.Query{Lo: b.Lo, Hi: b.Hi}, budget)
	}
	qt.PlanUsed = true
	qt.BoxVolume = boxVolume(b)
	return st.Engine.EstimateWithBudgetTraced(propolyne.Query{Lo: b.Lo, Hi: b.Hi}, budget, &qt.Plan)
}

// boxVolume counts the cube cells a query box spans (the channel dimension
// contributes one cell, so this is time buckets × value bins).
func boxVolume(b propolyne.Box) int64 {
	v := int64(1)
	for d := range b.Lo {
		v *= int64(b.Hi[d] - b.Lo[d] + 1)
	}
	return v
}

// AppendFrame ingests one frame incrementally: each channel's reading
// becomes a tuple appended to the wavelet-domain engine without
// retransforming the cube (§3.1.1's low-cost append). tick is the absolute
// device tick of the frame. Frames beyond the store's time horizon clamp
// into the final bucket.
func (st *Store) AppendFrame(tick int, frame []float64) error {
	if len(frame) != st.Channels {
		return fmt.Errorf("core: frame width %d != %d channels", len(frame), st.Channels)
	}
	tb := tick / st.TicksPerBucket
	if tb >= st.TimeBuckets {
		tb = st.TimeBuckets - 1
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for c, v := range frame {
		bin := st.quant[c].Quantize(v)
		if err := st.Engine.Append([]int{c, tb, bin}, 1); err != nil {
			return err
		}
	}
	return nil
}

// ValueTimeSeries returns the per-time-bucket average of a channel over
// [t0, t1] seconds: a GROUP BY over the time dimension with shared I/O.
// Buckets with no samples report ok=false via a NaN-free zero and the
// count slice lets callers distinguish them.
func (st *Store) ValueTimeSeries(channel int, t0, t1 float64, buckets int) (avgs, counts []float64, err error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	b, err := st.box(channel, t0, t1)
	if err != nil {
		return nil, nil, err
	}
	gCount, err := propolyne.NewGroupBy(b, nil, 1, buckets)
	if err != nil {
		return nil, nil, err
	}
	polys := make([]vec.Poly, 3)
	polys[2] = vec.PolyX(1)
	gSum, err := propolyne.NewGroupBy(b, polys, 1, buckets)
	if err != nil {
		return nil, nil, err
	}
	cRes, err := st.Engine.GroupByExact(gCount)
	if err != nil {
		return nil, nil, err
	}
	sRes, err := st.Engine.GroupByExact(gSum)
	if err != nil {
		return nil, nil, err
	}
	q := st.quant[channel]
	avgs = make([]float64, buckets)
	for i := range avgs {
		if cRes.Values[i] > 0 {
			avgs[i] = q.Min + sRes.Values[i]/cRes.Values[i]*q.Step()
		}
	}
	return avgs, cRes.Values, nil
}

// ValueHistogram returns the distribution of a channel's quantised values
// over [t0, t1] seconds as `buckets` counts spanning the channel's value
// range — a GROUP BY over the value dimension evaluated with shared I/O.
// The second return value gives each bucket's value-space midpoint.
func (st *Store) ValueHistogram(channel int, t0, t1 float64, buckets int) ([]float64, []float64, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	b, err := st.box(channel, t0, t1)
	if err != nil {
		return nil, nil, err
	}
	g, err := propolyne.NewGroupBy(b, nil, 2, buckets)
	if err != nil {
		return nil, nil, err
	}
	res, err := st.Engine.GroupByExact(g)
	if err != nil {
		return nil, nil, err
	}
	q := st.quant[channel]
	mids := make([]float64, len(g.Buckets))
	for i, bk := range g.Buckets {
		midBin := float64(bk.Lo[2]+bk.Hi[2]) / 2
		mids[i] = q.Min + midBin*q.Step()
	}
	return res.Values, mids, nil
}

// BuildTemplates converts labelled reference executions into recogniser
// template signatures, aggregating the second-moment matrices of all
// executions per label.
func BuildTemplates(refs map[string][][][]float64) map[string]svdstream.Signature {
	out := make(map[string]svdstream.Signature, len(refs))
	for name, execs := range refs {
		var agg [][]float64
		for _, frames := range execs {
			m := svdstream.MomentMatrix(frames)
			if agg == nil {
				agg = m
				continue
			}
			for i := range m {
				for j := range m[i] {
					agg[i][j] += m[i][j]
				}
			}
		}
		if agg != nil {
			out[name] = svdstream.SignatureFromMoments(agg)
		}
	}
	return out
}

// NewRecognizer builds the online recognition pipeline: rest threshold
// calibrated from idle frames, defaults tuned for the 100 Hz glove rig.
func (s *System) NewRecognizer(templates map[string]svdstream.Signature, idle [][]float64, dims int) *svdstream.Recognizer {
	return svdstream.NewRecognizer(templates, svdstream.RecognizerConfig{
		Dims:          dims,
		RestThreshold: svdstream.CalibrateRest(idle),
		// Signs pause at keyframes; a generous rest requirement keeps one
		// motion from splitting at those plateaus.
		RestTicks: 25,
	})
}

// SpeedSeries converts a frame recording into per-tick speed of a channel
// triple (e.g. a tracker's x, y, z) — the feature stream of the ADHD
// analysis.
func SpeedSeries(frames [][]float64, xCh, yCh, zCh int, rate float64) []float64 {
	if len(frames) < 2 {
		return nil
	}
	out := make([]float64, len(frames)-1)
	for i := 1; i < len(frames); i++ {
		dx := frames[i][xCh] - frames[i-1][xCh]
		dy := frames[i][yCh] - frames[i-1][yCh]
		dz := frames[i][zCh] - frames[i-1][zCh]
		out[i-1] = math.Sqrt(dx*dx+dy*dy+dz*dz) * rate
	}
	return out
}

// CovarianceOfChannels computes the covariance of two channels' raw values
// over a tick range directly from frames — the cross-check target for the
// wavelet-domain covariance (§3.4.1 port).
func CovarianceOfChannels(frames [][]float64, a, b int) float64 {
	xa := make([]float64, len(frames))
	xb := make([]float64, len(frames))
	for i, fr := range frames {
		xa[i] = fr[a]
		xb[i] = fr[b]
	}
	return vec.Covariance(xa, xb)
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n /= 2
		l++
	}
	return l
}
